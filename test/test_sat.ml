(* Tests for the CDCL SAT solver: unit behaviours, differential testing
   against the naive DPLL reference, and the minimal-model machinery. *)

open Separ_sat

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let solve_clauses ?(assumptions = []) clauses =
  let s = Solver.create () in
  List.iter (Solver.add_clause s) clauses;
  (Solver.solve ~assumptions s, s)

let test_empty () =
  let r, _ = solve_clauses [] in
  check "empty problem is sat" true (r = Solver.Sat)

let test_unit_propagation () =
  let r, s = solve_clauses [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] in
  check "sat" true (r = Solver.Sat);
  check "v1" true (Solver.value s 1);
  check "v2" true (Solver.value s 2);
  check "v3" true (Solver.value s 3)

let test_trivially_unsat () =
  let r, _ = solve_clauses [ [ 1 ]; [ -1 ] ] in
  check "unsat" true (r = Solver.Unsat)

let test_empty_clause () =
  let r, _ = solve_clauses [ [ 1 ]; [] ] in
  check "unsat" true (r = Solver.Unsat)

let test_tautology_ignored () =
  let r, _ = solve_clauses [ [ 1; -1 ]; [ 2 ] ] in
  check "sat" true (r = Solver.Sat)

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small unsat instance *)
  let var p h = (p * 2) + h + 1 in
  let clauses =
    (* each pigeon in some hole *)
    List.init 3 (fun p -> [ var p 0; var p 1 ])
    (* no two pigeons share a hole *)
    @ List.concat_map
        (fun h ->
          [
            [ -var 0 h; -var 1 h ];
            [ -var 0 h; -var 2 h ];
            [ -var 1 h; -var 2 h ];
          ])
        [ 0; 1 ]
  in
  let r, _ = solve_clauses clauses in
  check "pigeonhole unsat" true (r = Solver.Unsat)

let test_assumptions () =
  let clauses = [ [ 1; 2 ]; [ -1; 3 ] ] in
  let r, s = solve_clauses ~assumptions:[ -2 ] clauses in
  check "sat under -2" true (r = Solver.Sat);
  check "forces 1" true (Solver.value s 1);
  check "forces 3" true (Solver.value s 3);
  check "unsat under -1 -2" true
    (Solver.solve ~assumptions:[ -1; -2 ] s = Solver.Unsat);
  check "still sat without assumptions" true (Solver.solve s = Solver.Sat)

let test_incremental_add () =
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  check "sat" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ -1 ];
  Solver.add_clause s [ -2 ];
  check "unsat after additions" true (Solver.solve s = Solver.Unsat)

let test_add_clause_after_model () =
  (* adding a clause between solves must not corrupt the solver state
     (regression: unit simplification used to assert decision level 0) *)
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  Solver.add_clause s [ 2; 3 ];
  check "sat" true (Solver.solve s = Solver.Sat);
  (* a clause made unit by level-0 facts, added while a model is live *)
  Solver.add_clause s [ -1; 4 ];
  check "still sat" true (Solver.solve s = Solver.Sat);
  check "v4 implied" true (Solver.value s 4)

let random_clauses rand nv nc =
  List.init nc (fun _ ->
      List.init
        (1 + Random.State.int rand 3)
        (fun _ ->
          let v = 1 + Random.State.int rand nv in
          if Random.State.bool rand then v else -v))

let test_differential () =
  let rand = Random.State.make [| 7 |] in
  for _ = 1 to 500 do
    let nv = 3 + Random.State.int rand 9 in
    let nc = 3 + Random.State.int rand 35 in
    let clauses = random_clauses rand nv nc in
    let r, s = solve_clauses clauses in
    let expected = Reference.satisfiable clauses in
    check "sat agrees with reference" expected (r = Solver.Sat);
    if r = Solver.Sat then
      check "model satisfies clauses" true
        (Reference.check_model (Solver.model s) clauses)
  done

let test_minimize_properties () =
  let rand = Random.State.make [| 11 |] in
  for _ = 1 to 200 do
    let nv = 4 + Random.State.int rand 7 in
    let clauses = random_clauses rand nv (4 + Random.State.int rand 25) in
    let s = Solver.create () in
    Dimacs.load_into s { Dimacs.n_vars = nv; clauses };
    let r = Solver.solve s in
    if r = Solver.Sat then begin
      let soft = List.init nv (fun i -> i + 1) in
      let trues = Models.minimize s ~soft in
      check "minimized model valid" true
        (Reference.check_model (Solver.model s) clauses);
      (* minimality: removing any true var while keeping the others'
         false vars false is unsat *)
      List.iter
        (fun v ->
          let assumptions =
            -v
            :: List.filter_map
                 (fun u ->
                   if u = v || List.mem u trues then None else Some (-u))
                 soft
          in
          check "scenario is minimal" true
            (Solver.solve ~assumptions s = Solver.Unsat))
        trues
    end
  done

let test_enumerate_minimal () =
  (* x1 or x2: minimal models are {x1} and {x2} *)
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  let models = Models.enumerate_minimal s ~soft:[ 1; 2 ] in
  check_int "two minimal models" 2 (List.length models);
  List.iter (fun m -> check_int "each is a singleton" 1 (List.length m)) models

let test_block_superset () =
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  check "sat" true (Solver.solve s = Solver.Sat);
  Models.block_superset s ~trues:[ 1 ];
  Models.block_superset s ~trues:[ 2 ];
  check "all supersets blocked" true (Solver.solve s = Solver.Unsat)

let test_assumption_prefix_conflict () =
  (* conflicts at or below the assumption prefix (the [blevel < n_assumed]
     path in search) must yield Unsat without corrupting the solver *)
  let s = Solver.create () in
  Solver.add_clause s [ -1; -2 ];
  check "conflicting assumption pair" true
    (Solver.solve ~assumptions:[ 1; 2 ] s = Solver.Unsat);
  check "longer prefix, conflict below the last assumption" true
    (Solver.solve ~assumptions:[ 3; 1; 2; 4 ] s = Solver.Unsat);
  check "consistent prefix still sat" true
    (Solver.solve ~assumptions:[ 1 ] s = Solver.Sat);
  check "assumption forces the other side" true
    (Solver.value s 2 = false);
  check "solver still sat without assumptions" true
    (Solver.solve s = Solver.Sat);
  (* deeper: the learnt clause asserts below an assumption level *)
  let s = Solver.create () in
  Solver.add_clause s [ -2; -3 ];
  Solver.add_clause s [ -1; 4 ];
  check "conflict below prefix end" true
    (Solver.solve ~assumptions:[ 1; 2; 3 ] s = Solver.Unsat);
  check "dropping one assumption restores sat" true
    (Solver.solve ~assumptions:[ 1; 2 ] s = Solver.Sat);
  check "implied by first assumption" true (Solver.value s 4)

let test_solve_add_resolve () =
  (* solve -> add clause -> re-solve sequences keep models and learnt
     state consistent *)
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2; 3 ];
  check "sat" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ -1 ];
  check "sat after -1" true (Solver.solve s = Solver.Sat);
  check "model respects -1" false (Solver.value s 1);
  Solver.add_clause s [ -2 ];
  check "sat after -2" true (Solver.solve s = Solver.Sat);
  check "3 forced" true (Solver.value s 3);
  Solver.add_clause s [ -3 ];
  check "unsat after all blocked" true (Solver.solve s = Solver.Unsat);
  check "unsat is sticky" true (Solver.solve s = Solver.Unsat)

let test_model_staleness () =
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  check "sat" true (Solver.solve s = Solver.Sat);
  ignore (Solver.value s 1);
  Solver.add_clause s [ -1 ];
  check "value raises after add_clause" true
    (match Solver.value s 1 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "model raises after add_clause" true
    (match Solver.model s with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "re-solve re-validates" true (Solver.solve s = Solver.Sat);
  check "fresh model readable" true (Solver.value s 2);
  check "unsat solve invalidates too" true
    (Solver.solve ~assumptions:[ 1 ] s = Solver.Unsat
    &&
    match Solver.model s with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_reduce_db_under_pressure () =
  (* With a pathologically small learnt limit the database is reduced
     constantly; results must still agree with the reference solver, and
     no live antecedent may ever be deleted (a deleted antecedent shows up
     as wrong models or crashes in analyze). *)
  let rand = Random.State.make [| 23 |] in
  let reductions = ref 0 in
  for _ = 1 to 200 do
    (* strict 3-lit clauses near the phase transition: short random
       clauses propagate too eagerly to ever grow the learnt db past the
       trail, so reduction would never trigger on them *)
    let nv = 12 + Random.State.int rand 6 in
    let nc = nv * 9 / 2 in
    let clauses =
      List.init nc (fun _ ->
          List.init 3 (fun _ ->
              let v = 1 + Random.State.int rand nv in
              if Random.State.bool rand then v else -v))
    in
    let s = Solver.create () in
    Solver.set_learnt_limit s 2;
    List.iter (Solver.add_clause s) clauses;
    let r = Solver.solve s in
    let expected = Reference.satisfiable clauses in
    check "agrees with reference under db pressure" expected (r = Solver.Sat);
    if r = Solver.Sat then
      check "model valid under db pressure" true
        (Reference.check_model (Solver.model s) clauses);
    reductions := !reductions + (Solver.stats_record s).Solver.s_db_reductions
  done;
  check "reductions actually fired" true (!reductions > 0)

let test_reduce_db_keeps_antecedents () =
  (* pigeonhole with an aggressive limit: unsat must survive heavy churn *)
  let var p h = (p * 5) + h + 1 in
  let clauses =
    List.init 6 (fun p -> List.init 5 (fun h -> var p h))
    @ List.concat_map
        (fun h ->
          List.concat_map
            (fun a ->
              List.filter_map
                (fun b ->
                  if b > a then Some [ -var a h; -var b h ] else None)
                (List.init 6 Fun.id))
            (List.init 6 Fun.id))
        (List.init 5 Fun.id)
  in
  let s = Solver.create () in
  Solver.set_learnt_limit s 1;
  List.iter (Solver.add_clause s) clauses;
  check "pigeonhole 6-5 unsat under reduction" true
    (Solver.solve s = Solver.Unsat);
  let st = Solver.stats_record s in
  check "reductions fired" true (st.Solver.s_db_reductions > 0);
  check "clauses were deleted" true (st.Solver.s_learnts_deleted > 0)

let test_enumeration_reduction_invariant () =
  (* enumerate_minimal must return identical scenario sets whether the
     learnt database is reduced aggressively or never (seed-for-seed) *)
  let rand = Random.State.make [| 31 |] in
  let canon models =
    List.sort compare (List.map (List.sort compare) models)
  in
  for _ = 1 to 40 do
    let nv = 4 + Random.State.int rand 5 in
    let clauses = random_clauses rand nv (8 + Random.State.int rand 25) in
    let soft = List.init nv (fun i -> i + 1) in
    (* exhaustive enumeration: the full antichain of minimal models is
       order-independent, so it must not depend on db-reduction policy *)
    let run limit =
      let s = Solver.create () in
      Solver.set_learnt_limit s limit;
      List.iter (Solver.add_clause s) clauses;
      Models.enumerate_minimal s ~soft
    in
    let reduced = run 1 and unreduced = run max_int in
    Alcotest.(check (list (list int)))
      "same minimal scenarios with and without reduction" (canon unreduced)
      (canon reduced)
  done

let test_minimize_activation_reuse () =
  (* one activation variable per minimize call, all retired at the end *)
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  Solver.add_clause s [ 3; 4 ];
  let models = Models.enumerate_minimal s ~soft:[ 1; 2; 3; 4 ] in
  check "several scenarios" true (List.length models >= 2);
  let live, retired = Solver.activation_counts s in
  check_int "no live activation var" 0 live;
  check "at most one retirement per scenario" true
    (retired <= List.length models);
  check_int "only activation vars were allocated" (4 + retired)
    (Solver.n_vars s)

(* n-pigeon / (n-1)-hole clauses: small but conflict-rich unsat input
   for the budget tests. *)
let pigeonhole_clauses n =
  let holes = n - 1 in
  let var p h = (p * holes) + h + 1 in
  List.init n (fun p -> List.init holes (fun h -> var p h))
  @ List.concat_map
      (fun h ->
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b -> if b > a then Some [ -var a h; -var b h ] else None)
              (List.init n Fun.id))
          (List.init n Fun.id))
      (List.init holes Fun.id)

let test_budget_conflicts_unknown () =
  let clauses = pigeonhole_clauses 8 in
  let s = Solver.create () in
  List.iter (Solver.add_clause s) clauses;
  let budget = { Solver.b_max_conflicts = Some 5; b_max_time_ms = None } in
  check "tiny budget: unknown" true (Solver.solve ~budget s = Solver.Unknown);
  check "budget respected (within one restart's slack)" true
    (Solver.n_conflicts s <= 6);
  (* the solver state survives a budgeted abort: an unbudgeted re-solve
     still reaches the right answer *)
  check "unbudgeted re-solve proves unsat" true (Solver.solve s = Solver.Unsat)

let test_budget_exhausted_on_entry () =
  let r, _ = solve_clauses [ [ 1; 2 ] ] in
  check "baseline sat" true (r = Solver.Sat);
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  let zero = { Solver.b_max_conflicts = Some 0; b_max_time_ms = None } in
  check "zero conflict budget: unknown before search" true
    (Solver.solve ~budget:zero s = Solver.Unknown);
  let expired = { Solver.b_max_conflicts = None; b_max_time_ms = Some 0.0 } in
  check "expired time budget: unknown before search" true
    (Solver.solve ~budget:expired s = Solver.Unknown)

let test_minimize_budget_fallback () =
  (* With no budget the minimum here is one true variable per clause;
     with an exhausted budget, minimize must fall back to *some* valid
     model of the soft set rather than fail. *)
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2; 3 ];
  Solver.add_clause s [ 4; 5 ];
  check "sat" true (Solver.solve s = Solver.Sat);
  let soft = [ 1; 2; 3; 4; 5 ] in
  let budget = { Solver.b_max_conflicts = Some 0; b_max_time_ms = None } in
  let trues = Models.minimize ~budget s ~soft in
  check "fallback model established" true
    (List.for_all (fun v -> Solver.value s v) trues);
  check "fallback satisfies clause 1" true
    (List.exists (fun v -> List.mem v trues) [ 1; 2; 3 ]);
  check "fallback satisfies clause 2" true
    (List.exists (fun v -> List.mem v trues) [ 4; 5 ]);
  (* an unbudgeted minimize from here still reaches a true minimum *)
  check "resat" true (Solver.solve s = Solver.Sat);
  let minimal = Models.minimize s ~soft in
  check_int "true minimum found without budget" 2 (List.length minimal)

(* Propagation-cascade chains: chain [c] owns variables x_1..x_N (offset
   by [c*N]) and clauses C_j = (x_1 \/ ... \/ x_{j-1} \/ ~x_j).
   Assuming ~x_1 makes the cascade falsify each C_j literal by literal,
   so every clause drags its watch across an ever-longer false prefix —
   Theta(N^3) watch work per chain from a single propagation, with no
   decisions and no conflicts (each C_j ends satisfied by its own ~x_j).
   The triggers must be assumptions, not unit clauses: add_clause
   propagates units eagerly, outside any solve budget.  This is exactly
   the shape that escaped the old conflict-only deadline poll. *)
let cascade_clauses ~chains ~n =
  let clauses = ref [] in
  for c = chains - 1 downto 0 do
    let v k = (c * n) + k in
    for j = n downto 2 do
      clauses := (List.init (j - 1) (fun k -> v (k + 1)) @ [ -v j ]) :: !clauses
    done
  done;
  !clauses

let cascade_assumptions ~chains ~n = List.init chains (fun c -> -((c * n) + 1))

let test_time_budget_no_conflicts () =
  (* sanity on a small member of the family: sat, and conflict-free *)
  let s = Solver.create () in
  List.iter (Solver.add_clause s) (cascade_clauses ~chains:2 ~n:40);
  let small = cascade_assumptions ~chains:2 ~n:40 in
  check "small instance sat" true
    (Solver.solve ~assumptions:small s = Solver.Sat);
  check_int "small instance is conflict-free" 0 (Solver.n_conflicts s);
  (* a member big enough to overrun the time budget many times over *)
  let s = Solver.create () in
  List.iter (Solver.add_clause s) (cascade_clauses ~chains:30 ~n:300);
  let assumptions = cascade_assumptions ~chains:30 ~n:300 in
  let budget_ms = 50.0 in
  let budget =
    { Solver.b_max_conflicts = None; b_max_time_ms = Some budget_ms }
  in
  let t0 = Unix.gettimeofday () in
  let r = Solver.solve ~assumptions ~budget s in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  check "time budget on conflict-free instance: unknown" true
    (r = Solver.Unknown);
  check_int "no conflicts happened" 0 (Solver.n_conflicts s);
  (* the regression being pinned: the old search only polled the clock
     every 64 conflicts, so this instance ran to completion regardless
     of its budget.  2x is the documented slack for poll granularity. *)
  check "returned within 2x of the budget" true
    (elapsed_ms < 2.0 *. budget_ms);
  (* the abort leaves a usable solver behind *)
  check "unbudgeted re-solve answers sat" true
    (Solver.solve ~assumptions s = Solver.Sat)

(* --- failed assumptions (assumption-level unsat cores) -------------------- *)

let test_failed_assumptions_basic () =
  (* joint-unsat assumption pair: the core names a subset of the
     assumptions sufficient for unsatisfiability *)
  let s = Solver.create () in
  Solver.add_clause s [ -1; -2 ];
  check "unsat under 3,1,2" true
    (Solver.solve ~assumptions:[ 3; 1; 2 ] s = Solver.Unsat);
  let core = Solver.failed_assumptions s in
  check "core nonempty" true (core <> []);
  check "core is a subset of the assumptions" true
    (List.for_all (fun a -> List.mem a [ 3; 1; 2 ]) core);
  check "core excludes the irrelevant assumption" true
    (not (List.mem 3 core));
  (* the core alone re-derives unsat on a fresh solver *)
  let s2 = Solver.create () in
  Solver.add_clause s2 [ -1; -2 ];
  check "core re-derives unsat on a fresh solver" true
    (Solver.solve ~assumptions:core s2 = Solver.Unsat);
  (* the solver survives assumption-unsat and agrees with a fresh one *)
  check "reusable: sat without assumptions" true (Solver.solve s = Solver.Sat);
  check "reusable: sat under one assumption" true
    (Solver.solve ~assumptions:[ 1 ] s = Solver.Sat);
  check "model respects the clause" false (Solver.value s 2)

let test_failed_assumptions_edge_cases () =
  (* clauses alone unsat: the assumptions are blameless, core is empty *)
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  Solver.add_clause s [ -1 ];
  check "clause-level unsat" true
    (Solver.solve ~assumptions:[ 5 ] s = Solver.Unsat);
  check_int "clause-level unsat has empty core" 0
    (List.length (Solver.failed_assumptions s));
  (* assuming against a unit clause: singleton core *)
  let s = Solver.create () in
  Solver.add_clause s [ 7 ];
  check "unsat assuming -7" true
    (Solver.solve ~assumptions:[ -7 ] s = Solver.Unsat);
  check "core is the contradicted assumption" true
    (Solver.failed_assumptions s = [ -7 ]);
  (* directly contradictory assumptions, no clauses at all *)
  let s = Solver.create () in
  check "x and -x unsat" true
    (Solver.solve ~assumptions:[ 2; -2 ] s = Solver.Unsat);
  check "contradictory pair is the core" true
    (List.sort compare (Solver.failed_assumptions s) = [ -2; 2 ]);
  (* Sat and Unknown leave no core behind *)
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  check "sat" true (Solver.solve ~assumptions:[ 1 ] s = Solver.Sat);
  check_int "sat leaves no core" 0 (List.length (Solver.failed_assumptions s));
  let s = Solver.create () in
  List.iter (Solver.add_clause s) (pigeonhole_clauses 8);
  let zero = { Solver.b_max_conflicts = Some 0; b_max_time_ms = None } in
  check "unknown under zero budget" true
    (Solver.solve ~assumptions:[ 1 ] ~budget:zero s = Solver.Unknown);
  check_int "unknown leaves no core" 0
    (List.length (Solver.failed_assumptions s))

let test_failed_assumptions_random () =
  (* On random CNF under random assumptions: a Sat model honours every
     assumption; an Unsat core is a subset of the assumptions that is
     jointly unsat with the clauses (checked by the DPLL reference); and
     the solver stays usable afterwards, agreeing with the reference. *)
  let rand = Random.State.make [| 91 |] in
  for _ = 1 to 120 do
    let nv = 4 + Random.State.int rand 5 in
    let nc = 2 + Random.State.int rand (3 * nv) in
    let clauses =
      List.filter
        (( <> ) [])
        (List.init nc (fun _ ->
             List.init
               (1 + Random.State.int rand 3)
               (fun _ ->
                 let v = 1 + Random.State.int rand nv in
                 if Random.State.bool rand then v else -v)))
    in
    let assumptions =
      List.init
        (1 + Random.State.int rand 3)
        (fun _ ->
          let v = 1 + Random.State.int rand nv in
          if Random.State.bool rand then v else -v)
    in
    let s = Solver.create () in
    List.iter (Solver.add_clause s) clauses;
    (match Solver.solve ~assumptions s with
    | Solver.Sat ->
        check "model honours every assumption" true
          (List.for_all
             (fun a -> Solver.value s (abs a) = (a > 0))
             assumptions)
    | Solver.Unsat ->
        let core = Solver.failed_assumptions s in
        check "core subset of assumptions" true
          (List.for_all (fun a -> List.mem a assumptions) core);
        check "clauses + core jointly unsat (reference)" false
          (Reference.satisfiable (clauses @ List.map (fun a -> [ a ]) core))
    | Solver.Unknown -> Alcotest.fail "unbudgeted solve returned unknown");
    check "solver reusable, agrees with reference" true
      (Solver.solve s = Solver.Sat = Reference.satisfiable clauses)
  done

(* --- canonical lexicographic minimization ---------------------------------- *)

let test_minimize_lex_canonical () =
  (* the lexicographically-least model is a function of the constraints
     only: clause order and prior solver history must not change it —
     the property the incremental ASE path's byte-identity rests on *)
  let clauses = [ [ 1; 2; 3 ]; [ -1; 4 ]; [ 2; 5 ]; [ -3; -5 ] ] in
  let soft = [ 1; 2; 3; 4; 5 ] in
  let run order history =
    let s = Solver.create () in
    List.iter (Solver.add_clause s) order;
    if history then ignore (Solver.solve ~assumptions:[ 3 ] s);
    check "sat" true (Solver.solve s = Solver.Sat);
    Models.minimize_lex s ~soft
  in
  let reference = run clauses false in
  check "clause order irrelevant" true
    (run (List.rev clauses) false = reference);
  check "solver history irrelevant" true (run clauses true = reference)

let test_minimize_lex_is_lex_least () =
  (* brute-force oracle: of all assignments to the soft variables, in
     false<true lexicographic order, the first one consistent with the
     clauses is exactly what minimize_lex must return *)
  let rand = Random.State.make [| 77 |] in
  for _ = 1 to 60 do
    let nv = 4 + Random.State.int rand 3 in
    let nc = 2 + Random.State.int rand (2 * nv) in
    let clauses =
      List.filter
        (( <> ) [])
        (List.init nc (fun _ ->
             List.init
               (1 + Random.State.int rand 3)
               (fun _ ->
                 let v = 1 + Random.State.int rand nv in
                 if Random.State.bool rand then v else -v)))
    in
    let s = Solver.create () in
    List.iter (Solver.add_clause s) clauses;
    if Solver.solve s = Solver.Sat then begin
      let soft = List.init nv (fun i -> i + 1) in
      let got = Models.minimize_lex s ~soft in
      (* enumerate assignments with soft var 1 as the most significant
         bit, so ascending integers are ascending lex order *)
      let expected = ref None in
      (try
         for a = 0 to (1 lsl nv) - 1 do
           let units =
             List.init nv (fun i ->
                 let v = i + 1 in
                 if a land (1 lsl (nv - 1 - i)) <> 0 then [ v ] else [ -v ])
           in
           if Reference.satisfiable (clauses @ units) then begin
             expected :=
               Some (List.filter_map (function [ v ] when v > 0 -> Some v | _ -> None) units);
             raise Exit
           end
         done
       with Exit -> ());
      match !expected with
      | None -> Alcotest.fail "reference found no model of a sat instance"
      | Some exp -> Alcotest.(check (list int)) "lex-least model" exp got
    end
  done

let test_minimize_lex_extra () =
  (* [extra] assumptions scope the minimization without joining the
     formula: guarded and unguarded minimizations answer differently,
     and the guarded pass leaves no residue *)
  let s = Solver.create () in
  Solver.add_clause s [ -10; 1 ]; (* guard 10 forces 1 *)
  Solver.add_clause s [ 1; 2 ];
  check "sat under guard" true (Solver.solve ~assumptions:[ 10 ] s = Solver.Sat);
  let under = Models.minimize_lex ~extra:[ 10 ] s ~soft:[ 1; 2 ] in
  Alcotest.(check (list int)) "guarded: 1 forced, 2 dropped" [ 1 ] under;
  check "resat" true (Solver.solve s = Solver.Sat);
  let free = Models.minimize_lex s ~soft:[ 1; 2 ] in
  Alcotest.(check (list int)) "unguarded: prefers -1, keeps 2" [ 2 ] free

let test_dimacs_roundtrip () =
  let p = Dimacs.{ n_vars = 4; clauses = [ [ 1; -2 ]; [ 3; 4 ]; [ -1 ] ] } in
  let p' = Dimacs.parse_string (Dimacs.to_string p) in
  check_int "vars preserved" p.Dimacs.n_vars p'.Dimacs.n_vars;
  Alcotest.(check (list (list int)))
    "clauses preserved" p.Dimacs.clauses p'.Dimacs.clauses

let test_dimacs_comments () =
  let p = Dimacs.parse_string "c a comment\np cnf 3 2\n1 -2 0\n3 0\n" in
  check_int "vars" 3 p.Dimacs.n_vars;
  check_int "clauses" 2 (List.length p.Dimacs.clauses)

let test_dimacs_whitespace () =
  (* tabs, CRLF line ends and runs of blanks are all legal separators *)
  let p = Dimacs.parse_string "p\tcnf  3 2\r\n1\t-2  0\r\n3\t0\r\n" in
  check_int "vars" 3 p.Dimacs.n_vars;
  Alcotest.(check (list (list int)))
    "clauses" [ [ 1; -2 ]; [ 3 ] ] p.Dimacs.clauses;
  (* a clause-count mismatch in the header warns but still parses *)
  let p = Dimacs.parse_string "p cnf 3 7\n1 2 0\n" in
  check_int "mismatched header tolerated" 1 (List.length p.Dimacs.clauses)

let test_dimacs_satlib_trailer () =
  (* SATLIB benchmark files end with a "%" line, a lone "0" line and a
     blank line; the trailing 0 must not be read as an empty clause
     (which would make every SATLIB instance trivially unsat). *)
  let p = Dimacs.parse_string "p cnf 3 2\n1 -2 0\n3 0\n%\n0\n\n" in
  check_int "vars" 3 p.Dimacs.n_vars;
  Alcotest.(check (list (list int)))
    "trailer ignored" [ [ 1; -2 ]; [ 3 ] ] p.Dimacs.clauses;
  (* everything after the trailer is ignored, even valid-looking clauses *)
  let p = Dimacs.parse_string "p cnf 2 1\n1 2 0\n%\n0\n-1 0\n-2 0\n" in
  Alcotest.(check (list (list int)))
    "clauses after the trailer ignored" [ [ 1; 2 ] ] p.Dimacs.clauses;
  check "satlib instance stays satisfiable" true
    (let s = Solver.create () in
     Dimacs.load_into s p;
     Solver.solve s = Solver.Sat)

(* --- SatELite-style preprocessing ------------------------------------------ *)

let test_preprocess_basic () =
  (* chain of equivalences x1 <-> x2 <-> ... <-> x6 with only x6 frozen:
     BVE eliminates every interior variable (each resolution step is
     tautological or re-links the chain), and reconstruction must value
     the eliminated variables consistently with whatever the frozen end
     of the chain was assigned. *)
  let s = Solver.create () in
  for v = 1 to 5 do
    Solver.add_clause s [ -v; v + 1 ];
    Solver.add_clause s [ v; -(v + 1) ]
  done;
  Solver.preprocess ~frozen:[ 6 ] s;
  let elim, _, _ = Solver.simp_stats s in
  check "all five chain variables eliminated" true (elim = 5);
  check "sat under x6" true (Solver.solve ~assumptions:[ 6 ] s = Solver.Sat);
  for v = 1 to 6 do
    check (Printf.sprintf "x%d reconstructed true" v) true (Solver.value s v)
  done;
  check "sat under -x6" true
    (Solver.solve ~assumptions:[ -6 ] s = Solver.Sat);
  for v = 1 to 6 do
    check (Printf.sprintf "x%d reconstructed false" v) false (Solver.value s v)
  done;
  (* naming an eliminated variable afterwards is a programming error *)
  List.iter
    (fun v ->
      check
        (Printf.sprintf "add_clause rejects eliminated x%d" v)
        true
        (match Solver.add_clause s [ v; 7 ] with
        | () -> false
        | exception Invalid_argument _ -> true);
      check
        (Printf.sprintf "solve rejects eliminated x%d in assumptions" v)
        true
        (match Solver.solve ~assumptions:[ v ] s with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ 1; 2; 3; 4; 5 ]

let test_preprocess_differential () =
  (* the full pipeline — preprocess then solve — against the DPLL
     reference on random 3-CNF: satisfiability agrees, reconstructed
     models satisfy the *original* clauses, and unsat stays unsat *)
  let rand = Random.State.make [| 43 |] in
  for _ = 1 to 300 do
    let nv = 5 + Random.State.int rand 12 in
    let nc = 5 + Random.State.int rand (4 * nv) in
    let clauses =
      List.init nc (fun _ ->
          List.init 3 (fun _ ->
              let v = 1 + Random.State.int rand nv in
              if Random.State.bool rand then v else -v))
    in
    let s = Solver.create () in
    List.iter (Solver.add_clause s) clauses;
    Solver.preprocess s;
    let r = Solver.solve s in
    let expected = Reference.satisfiable clauses in
    check "preprocessed solver agrees with reference" expected (r = Solver.Sat);
    if r = Solver.Sat then begin
      (* value every original variable (not just the survivors in
         [model]) so reconstruction of eliminated variables is
         exercised *)
      let full_model =
        Array.init nv (fun i ->
            (* random instances may not mention every variable up to nv *)
            i < Solver.n_vars s && Solver.value s (i + 1))
      in
      check "reconstructed model satisfies the original clauses" true
        (Reference.check_model full_model clauses)
    end
  done

let test_preprocess_frozen_assumptions () =
  (* frozen variables keep their meaning under assumptions: solving with
     assumptions over frozen vars agrees with the reference solving the
     clauses plus those units, and unsat cores stay genuine *)
  let rand = Random.State.make [| 59 |] in
  for _ = 1 to 150 do
    let nv = 5 + Random.State.int rand 8 in
    let nc = 4 + Random.State.int rand (3 * nv) in
    let clauses =
      List.init nc (fun _ ->
          List.init 3 (fun _ ->
              let v = 1 + Random.State.int rand nv in
              if Random.State.bool rand then v else -v))
    in
    let frozen =
      List.sort_uniq compare
        (List.init 3 (fun _ -> 1 + Random.State.int rand nv))
    in
    let assumptions =
      List.map (fun v -> if Random.State.bool rand then v else -v) frozen
    in
    let s = Solver.create () in
    List.iter (Solver.add_clause s) clauses;
    Solver.preprocess ~frozen s;
    let expected =
      Reference.satisfiable (clauses @ List.map (fun a -> [ a ]) assumptions)
    in
    match Solver.solve ~assumptions s with
    | Solver.Sat ->
        check "assumption-sat agrees with reference" true expected;
        check "model honours assumptions" true
          (List.for_all
             (fun a -> Solver.value s (abs a) = (a > 0))
             assumptions)
    | Solver.Unsat ->
        check "assumption-unsat agrees with reference" false expected;
        let core = Solver.failed_assumptions s in
        check "core subset of assumptions" true
          (List.for_all (fun a -> List.mem a assumptions) core);
        check "core jointly unsat with original clauses" false
          (Reference.satisfiable (clauses @ List.map (fun a -> [ a ]) core))
    | Solver.Unknown -> Alcotest.fail "unbudgeted solve returned unknown"
  done

let test_preprocess_minimize_identical () =
  (* the byte-identity property the ASE pipeline rests on: with the soft
     set frozen, canonical lexicographic minimization answers the same
     with and without preprocessing *)
  let rand = Random.State.make [| 67 |] in
  for _ = 1 to 80 do
    let nv = 5 + Random.State.int rand 6 in
    let nc = 4 + Random.State.int rand (3 * nv) in
    let clauses =
      List.init nc (fun _ ->
          List.init 3 (fun _ ->
              let v = 1 + Random.State.int rand nv in
              if Random.State.bool rand then v else -v))
    in
    (* a strict subset of the variables is soft, so elimination has
       non-frozen variables to chew on *)
    let soft = List.init (nv / 2) (fun i -> i + 1) in
    let run preprocessed =
      let s = Solver.create () in
      List.iter (Solver.add_clause s) clauses;
      if preprocessed then Solver.preprocess ~frozen:soft s;
      if Solver.solve s = Solver.Sat then begin
        (* minimize_lex is canonical — a function of the constraints
           only — so it must be literally identical either way; the
           enumerated antichain is canonical only as a set.  Order
           matters: enumeration exhausts the solver (final Unsat), so
           the lex minimization must read its model first. *)
        let lex = Models.minimize_lex s ~soft in
        check "re-solve after lex minimization" true (Solver.solve s = Solver.Sat);
        let scenarios =
          List.sort compare
            (List.map (List.sort compare) (Models.enumerate_minimal s ~soft))
        in
        Some (lex, scenarios)
      end
      else None
    in
    let raw = run false and pre = run true in
    (match (raw, pre) with
    | Some (lr, er), Some (lp, ep) when raw <> pre ->
        Printf.eprintf "MISMATCH lex_raw=[%s] lex_pre=[%s] enum_eq=%b\nclauses=%s\n%!"
          (String.concat "," (List.map string_of_int lr))
          (String.concat "," (List.map string_of_int lp))
          (er = ep)
          (String.concat ";"
             (List.map
                (fun c -> String.concat " " (List.map string_of_int c))
                clauses))
    | _ -> ());
    check "lex-least scenario and minimal-scenario set identical" true
      (raw = pre)
  done

let qcheck_dimacs_roundtrip =
  QCheck.Test.make ~name:"DIMACS print/parse round-trips" ~count:200
    QCheck.(small_list (small_list (int_range (-9) 9)))
    (fun raw ->
      let clauses =
        List.map (List.filter (fun l -> l <> 0)) raw
      in
      let n_vars =
        List.fold_left
          (List.fold_left (fun acc l -> max acc (abs l)))
          0 clauses
      in
      let p = Dimacs.{ n_vars; clauses } in
      let p' = Dimacs.parse_string (Dimacs.to_string p) in
      p'.Dimacs.n_vars = n_vars && p'.Dimacs.clauses = clauses)

let qcheck_solver_agrees =
  QCheck.Test.make ~name:"solver agrees with DPLL reference on random CNF"
    ~count:300
    QCheck.(
      pair (int_range 3 8)
        (small_list (small_list (int_range (-8) 8))))
    (fun (nv, raw) ->
      let clauses =
        List.map
          (List.filter_map (fun l ->
               if l = 0 then None
               else
                 let v = (abs l mod nv) + 1 in
                 Some (if l > 0 then v else -v)))
          raw
      in
      let clauses = List.filter (( <> ) []) clauses in
      let r, s = solve_clauses clauses in
      let expected = Reference.satisfiable clauses in
      if r = Solver.Sat then
        expected && Reference.check_model (Solver.model s) clauses
      else not expected)

let tests =
  [
    Alcotest.test_case "empty problem" `Quick test_empty;
    Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
    Alcotest.test_case "trivially unsat" `Quick test_trivially_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "tautology ignored" `Quick test_tautology_ignored;
    Alcotest.test_case "pigeonhole 3-2" `Quick test_pigeonhole_3_2;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "incremental add" `Quick test_incremental_add;
    Alcotest.test_case "add clause after model" `Quick test_add_clause_after_model;
    Alcotest.test_case "assumption prefix conflict" `Quick
      test_assumption_prefix_conflict;
    Alcotest.test_case "solve-add-resolve sequences" `Quick
      test_solve_add_resolve;
    Alcotest.test_case "model staleness" `Quick test_model_staleness;
    Alcotest.test_case "reduce_db under pressure" `Slow
      test_reduce_db_under_pressure;
    Alcotest.test_case "reduce_db keeps antecedents" `Quick
      test_reduce_db_keeps_antecedents;
    Alcotest.test_case "enumeration invariant under reduction" `Slow
      test_enumeration_reduction_invariant;
    Alcotest.test_case "minimize reuses activation literal" `Quick
      test_minimize_activation_reuse;
    Alcotest.test_case "differential vs reference" `Slow test_differential;
    Alcotest.test_case "minimize properties" `Slow test_minimize_properties;
    Alcotest.test_case "enumerate minimal" `Quick test_enumerate_minimal;
    Alcotest.test_case "block superset" `Quick test_block_superset;
    Alcotest.test_case "conflict budget yields unknown" `Quick
      test_budget_conflicts_unknown;
    Alcotest.test_case "budget exhausted on entry" `Quick
      test_budget_exhausted_on_entry;
    Alcotest.test_case "time budget without conflicts" `Slow
      test_time_budget_no_conflicts;
    Alcotest.test_case "failed assumptions basics" `Quick
      test_failed_assumptions_basic;
    Alcotest.test_case "failed assumptions edge cases" `Quick
      test_failed_assumptions_edge_cases;
    Alcotest.test_case "failed assumptions random vs reference" `Slow
      test_failed_assumptions_random;
    Alcotest.test_case "minimize_lex canonical" `Quick
      test_minimize_lex_canonical;
    Alcotest.test_case "minimize_lex lexicographically least" `Slow
      test_minimize_lex_is_lex_least;
    Alcotest.test_case "minimize_lex extra assumptions" `Quick
      test_minimize_lex_extra;
    Alcotest.test_case "minimize budget fallback" `Quick
      test_minimize_budget_fallback;
    Alcotest.test_case "dimacs round trip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs comments" `Quick test_dimacs_comments;
    Alcotest.test_case "dimacs whitespace" `Quick test_dimacs_whitespace;
    Alcotest.test_case "dimacs satlib trailer" `Quick
      test_dimacs_satlib_trailer;
    Alcotest.test_case "preprocess basics" `Quick test_preprocess_basic;
    Alcotest.test_case "preprocess differential vs reference" `Slow
      test_preprocess_differential;
    Alcotest.test_case "preprocess frozen assumptions" `Slow
      test_preprocess_frozen_assumptions;
    Alcotest.test_case "preprocess keeps minimal scenarios" `Slow
      test_preprocess_minimize_identical;
    QCheck_alcotest.to_alcotest qcheck_solver_agrees;
    QCheck_alcotest.to_alcotest qcheck_dimacs_roundtrip;
  ]
