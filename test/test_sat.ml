(* Tests for the CDCL SAT solver: unit behaviours, differential testing
   against the naive DPLL reference, and the minimal-model machinery. *)

open Separ_sat

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let solve_clauses ?(assumptions = []) clauses =
  let s = Solver.create () in
  List.iter (Solver.add_clause s) clauses;
  (Solver.solve ~assumptions s, s)

let test_empty () =
  let r, _ = solve_clauses [] in
  check "empty problem is sat" true (r = Solver.Sat)

let test_unit_propagation () =
  let r, s = solve_clauses [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] in
  check "sat" true (r = Solver.Sat);
  check "v1" true (Solver.value s 1);
  check "v2" true (Solver.value s 2);
  check "v3" true (Solver.value s 3)

let test_trivially_unsat () =
  let r, _ = solve_clauses [ [ 1 ]; [ -1 ] ] in
  check "unsat" true (r = Solver.Unsat)

let test_empty_clause () =
  let r, _ = solve_clauses [ [ 1 ]; [] ] in
  check "unsat" true (r = Solver.Unsat)

let test_tautology_ignored () =
  let r, _ = solve_clauses [ [ 1; -1 ]; [ 2 ] ] in
  check "sat" true (r = Solver.Sat)

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small unsat instance *)
  let var p h = (p * 2) + h + 1 in
  let clauses =
    (* each pigeon in some hole *)
    List.init 3 (fun p -> [ var p 0; var p 1 ])
    (* no two pigeons share a hole *)
    @ List.concat_map
        (fun h ->
          [
            [ -var 0 h; -var 1 h ];
            [ -var 0 h; -var 2 h ];
            [ -var 1 h; -var 2 h ];
          ])
        [ 0; 1 ]
  in
  let r, _ = solve_clauses clauses in
  check "pigeonhole unsat" true (r = Solver.Unsat)

let test_assumptions () =
  let clauses = [ [ 1; 2 ]; [ -1; 3 ] ] in
  let r, s = solve_clauses ~assumptions:[ -2 ] clauses in
  check "sat under -2" true (r = Solver.Sat);
  check "forces 1" true (Solver.value s 1);
  check "forces 3" true (Solver.value s 3);
  check "unsat under -1 -2" true
    (Solver.solve ~assumptions:[ -1; -2 ] s = Solver.Unsat);
  check "still sat without assumptions" true (Solver.solve s = Solver.Sat)

let test_incremental_add () =
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  check "sat" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ -1 ];
  Solver.add_clause s [ -2 ];
  check "unsat after additions" true (Solver.solve s = Solver.Unsat)

let test_add_clause_after_model () =
  (* adding a clause between solves must not corrupt the solver state
     (regression: unit simplification used to assert decision level 0) *)
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  Solver.add_clause s [ 2; 3 ];
  check "sat" true (Solver.solve s = Solver.Sat);
  (* a clause made unit by level-0 facts, added while a model is live *)
  Solver.add_clause s [ -1; 4 ];
  check "still sat" true (Solver.solve s = Solver.Sat);
  check "v4 implied" true (Solver.value s 4)

let random_clauses rand nv nc =
  List.init nc (fun _ ->
      List.init
        (1 + Random.State.int rand 3)
        (fun _ ->
          let v = 1 + Random.State.int rand nv in
          if Random.State.bool rand then v else -v))

let test_differential () =
  let rand = Random.State.make [| 7 |] in
  for _ = 1 to 500 do
    let nv = 3 + Random.State.int rand 9 in
    let nc = 3 + Random.State.int rand 35 in
    let clauses = random_clauses rand nv nc in
    let r, s = solve_clauses clauses in
    let expected = Reference.satisfiable clauses in
    check "sat agrees with reference" expected (r = Solver.Sat);
    if r = Solver.Sat then
      check "model satisfies clauses" true
        (Reference.check_model (Solver.model s) clauses)
  done

let test_minimize_properties () =
  let rand = Random.State.make [| 11 |] in
  for _ = 1 to 200 do
    let nv = 4 + Random.State.int rand 7 in
    let clauses = random_clauses rand nv (4 + Random.State.int rand 25) in
    let s = Solver.create () in
    Dimacs.load_into s { Dimacs.n_vars = nv; clauses };
    let r = Solver.solve s in
    if r = Solver.Sat then begin
      let soft = List.init nv (fun i -> i + 1) in
      let trues = Models.minimize s ~soft in
      check "minimized model valid" true
        (Reference.check_model (Solver.model s) clauses);
      (* minimality: removing any true var while keeping the others'
         false vars false is unsat *)
      List.iter
        (fun v ->
          let assumptions =
            -v
            :: List.filter_map
                 (fun u ->
                   if u = v || List.mem u trues then None else Some (-u))
                 soft
          in
          check "scenario is minimal" true
            (Solver.solve ~assumptions s = Solver.Unsat))
        trues
    end
  done

let test_enumerate_minimal () =
  (* x1 or x2: minimal models are {x1} and {x2} *)
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  let models = Models.enumerate_minimal s ~soft:[ 1; 2 ] in
  check_int "two minimal models" 2 (List.length models);
  List.iter (fun m -> check_int "each is a singleton" 1 (List.length m)) models

let test_block_superset () =
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  check "sat" true (Solver.solve s = Solver.Sat);
  Models.block_superset s ~trues:[ 1 ];
  Models.block_superset s ~trues:[ 2 ];
  check "all supersets blocked" true (Solver.solve s = Solver.Unsat)

let test_dimacs_roundtrip () =
  let p = Dimacs.{ n_vars = 4; clauses = [ [ 1; -2 ]; [ 3; 4 ]; [ -1 ] ] } in
  let p' = Dimacs.parse_string (Dimacs.to_string p) in
  check_int "vars preserved" p.Dimacs.n_vars p'.Dimacs.n_vars;
  Alcotest.(check (list (list int)))
    "clauses preserved" p.Dimacs.clauses p'.Dimacs.clauses

let test_dimacs_comments () =
  let p = Dimacs.parse_string "c a comment\np cnf 3 2\n1 -2 0\n3 0\n" in
  check_int "vars" 3 p.Dimacs.n_vars;
  check_int "clauses" 2 (List.length p.Dimacs.clauses)

let qcheck_solver_agrees =
  QCheck.Test.make ~name:"solver agrees with DPLL reference on random CNF"
    ~count:300
    QCheck.(
      pair (int_range 3 8)
        (small_list (small_list (int_range (-8) 8))))
    (fun (nv, raw) ->
      let clauses =
        List.map
          (List.filter_map (fun l ->
               if l = 0 then None
               else
                 let v = (abs l mod nv) + 1 in
                 Some (if l > 0 then v else -v)))
          raw
      in
      let clauses = List.filter (( <> ) []) clauses in
      let r, s = solve_clauses clauses in
      let expected = Reference.satisfiable clauses in
      if r = Solver.Sat then
        expected && Reference.check_model (Solver.model s) clauses
      else not expected)

let tests =
  [
    Alcotest.test_case "empty problem" `Quick test_empty;
    Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
    Alcotest.test_case "trivially unsat" `Quick test_trivially_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "tautology ignored" `Quick test_tautology_ignored;
    Alcotest.test_case "pigeonhole 3-2" `Quick test_pigeonhole_3_2;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "incremental add" `Quick test_incremental_add;
    Alcotest.test_case "add clause after model" `Quick test_add_clause_after_model;
    Alcotest.test_case "differential vs reference" `Slow test_differential;
    Alcotest.test_case "minimize properties" `Slow test_minimize_properties;
    Alcotest.test_case "enumerate minimal" `Quick test_enumerate_minimal;
    Alcotest.test_case "block superset" `Quick test_block_superset;
    Alcotest.test_case "dimacs round trip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs comments" `Quick test_dimacs_comments;
    QCheck_alcotest.to_alcotest qcheck_solver_agrees;
  ]
