(* Failure-path tests: malformed inputs must be rejected with clear
   errors at every layer — the assembler, the APK container format, the
   policy parser, the relational AST, and the bounds checker. *)

open Separ_relog

let check = Alcotest.(check bool)

let raises_failure f =
  try
    ignore (f ());
    false
  with
  | Failure _ -> true
  | Separ_dalvik.Asm.Parse_error _ -> true

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* --- assembler --------------------------------------------------------------- *)

let test_asm_bad_instruction () =
  check "garbage instruction" true
    (raises_failure (fun () ->
         Separ_dalvik.Asm.assemble
           ".class C\n.method m params=0 regs=1\n  frobnicate v0\n.end\n"))

let test_asm_unterminated_method () =
  check "missing .end" true
    (raises_failure (fun () ->
         Separ_dalvik.Asm.assemble ".class C\n.method m params=0 regs=1\n  nop\n"))

let test_asm_instruction_outside_method () =
  check "instruction outside method" true
    (raises_failure (fun () ->
         Separ_dalvik.Asm.assemble ".class C\n  nop\n"))

let test_asm_bad_register () =
  check "bad register" true
    (raises_failure (fun () ->
         Separ_dalvik.Asm.assemble
           ".class C\n.method m params=0 regs=1\n  move vx, v0\n.end\n"))

let test_asm_undefined_label () =
  check "undefined branch target" true
    (raises_failure (fun () ->
         Separ_dalvik.Asm.assemble
           ".class C\n.method m params=0 regs=1\n  goto :missing\n.end\n"))

(* --- APK text ------------------------------------------------------------------ *)

let test_apk_text_missing_package () =
  check "missing .package" true
    (raises_failure (fun () ->
         Separ_dalvik.Apk_text.parse ".component Activity A\n"))

let test_apk_text_bad_kind () =
  check "bad component kind" true
    (raises_failure (fun () ->
         Separ_dalvik.Apk_text.parse ".package p\n.component Widget W\n"))

let test_apk_text_unknown_line () =
  check "unknown directive" true
    (raises_failure (fun () ->
         Separ_dalvik.Apk_text.parse ".package p\n.frobnicate x\n"))

(* --- policies -------------------------------------------------------------------- *)

let test_policy_bad_line () =
  check "malformed policy line" true
    (raises_failure (fun () -> Separ_policy.Policy.of_line "not a policy"));
  check "bad event" true
    (raises_failure (fun () ->
         Separ_policy.Policy.of_line "id\tBAD_EVENT\tallow\treason\t"));
  check "bad action" true
    (raises_failure (fun () ->
         Separ_policy.Policy.of_line "id\tICC_send\texplode\treason\t"));
  check "bad condition" true
    (raises_failure (fun () ->
         Separ_policy.Policy.of_line
           "id\tICC_send\tallow\treason\tIntent.frobnicate=x"));
  check "bad resource in condition" true
    (raises_failure (fun () ->
         Separ_policy.Policy.of_line
           "id\tICC_send\tallow\treason\tIntent.extra=NOT_A_RESOURCE"))

(* --- relational AST -------------------------------------------------------------- *)

let test_ast_arity_errors () =
  let u = Relation.make "U" 1 and b = Relation.make "B" 2 in
  let arity_err f =
    try
      ignore (Ast.arity (f ()));
      false
    with Ast.Arity_error _ -> true
  in
  check "transpose of unary" true
    (arity_err (fun () -> Ast.Transpose (Ast.Rel u)));
  check "closure of unary" true
    (arity_err (fun () -> Ast.Closure (Ast.Rel u)));
  check "union of mixed arity" true
    (arity_err (fun () -> Ast.Union (Ast.Rel u, Ast.Rel b)));
  check "join to arity zero" true
    (arity_err (fun () -> Ast.Join (Ast.Rel u, Ast.Rel u)))

let test_bounds_errors () =
  let u = Universe.of_atoms [ "a"; "b" ] in
  let r = Relation.make "R" 1 in
  let bounds = Bounds.create u in
  check "lower must be within upper" true
    (raises_invalid (fun () ->
         Bounds.bound bounds r
           ~lower:(Tuple_set.univ 2)
           ~upper:(Tuple_set.of_list 1 [ [| 0 |] ])));
  check "arity mismatch rejected" true
    (raises_invalid (fun () ->
         Bounds.bound bounds r ~lower:(Tuple_set.empty 2)
           ~upper:(Tuple_set.iden 2)));
  check "unbound relation lookup" true
    (raises_invalid (fun () -> Bounds.get bounds r))

let test_tuple_set_errors () =
  check "of_list arity mismatch" true
    (raises_invalid (fun () -> Tuple_set.of_list 2 [ [| 0 |] ]));
  check "union arity mismatch" true
    (raises_invalid (fun () ->
         Tuple_set.union (Tuple_set.univ 2) (Tuple_set.iden 2)));
  check "transpose of unary" true
    (raises_invalid (fun () -> Tuple_set.transpose (Tuple_set.univ 2)))

let test_relation_arity () =
  check "arity must be positive" true
    (raises_invalid (fun () -> Relation.make "Z" 0))

(* --- solver input ------------------------------------------------------------------ *)

let test_solver_zero_literal () =
  let s = Separ_sat.Solver.create () in
  check "zero literal rejected" true
    (raises_invalid (fun () -> Separ_sat.Solver.add_clause s [ 1; 0 ]))

let test_dimacs_garbage () =
  check "garbage token" true
    (raises_failure (fun () -> Separ_sat.Dimacs.parse_string "p cnf 2 1\n1 x 0\n"))

(* --- device ------------------------------------------------------------------------- *)

let test_device_unknown_app () =
  let d = Separ_runtime.Device.create () in
  check "starting an uninstalled app" true
    (raises_invalid (fun () ->
         Separ_runtime.Device.start_component d ~pkg:"ghost" ~component:"C"))

let tests =
  [
    Alcotest.test_case "asm: bad instruction" `Quick test_asm_bad_instruction;
    Alcotest.test_case "asm: unterminated method" `Quick
      test_asm_unterminated_method;
    Alcotest.test_case "asm: instruction outside method" `Quick
      test_asm_instruction_outside_method;
    Alcotest.test_case "asm: bad register" `Quick test_asm_bad_register;
    Alcotest.test_case "asm: undefined label" `Quick test_asm_undefined_label;
    Alcotest.test_case "apk text: missing package" `Quick
      test_apk_text_missing_package;
    Alcotest.test_case "apk text: bad kind" `Quick test_apk_text_bad_kind;
    Alcotest.test_case "apk text: unknown directive" `Quick
      test_apk_text_unknown_line;
    Alcotest.test_case "policy: malformed lines" `Quick test_policy_bad_line;
    Alcotest.test_case "ast: arity errors" `Quick test_ast_arity_errors;
    Alcotest.test_case "bounds: errors" `Quick test_bounds_errors;
    Alcotest.test_case "tuple set: errors" `Quick test_tuple_set_errors;
    Alcotest.test_case "relation: arity" `Quick test_relation_arity;
    Alcotest.test_case "solver: zero literal" `Quick test_solver_zero_literal;
    Alcotest.test_case "dimacs: garbage" `Quick test_dimacs_garbage;
    Alcotest.test_case "device: unknown app" `Quick test_device_unknown_app;
  ]
