(* Tests for the formal encoding and the vulnerability signatures: the
   relational resolution predicate must agree with the runtime's intent
   matching (cross-layer consistency), witnesses must decode, and each
   signature must fire exactly on its pattern. *)

open Separ_android
open Separ_dalvik
open Separ_ame
open Separ_specs
module B = Builder

let check = Alcotest.(check bool)

(* Build a one-app bundle with one sender (sending one implicit intent
   with the given properties) and one receiver (with the given filter),
   and ask the relational encoding whether the intent resolves. *)
let relational_resolves ?send_via ~action ~categories ~data_type ~data_scheme
    ~filter ~kind () =
  let setup b i =
    B.set_action b i action;
    List.iter (fun c -> B.add_category b i c) categories;
    Option.iter (fun t -> B.set_data_type b i t) data_type;
    Option.iter (fun s -> B.set_data_scheme b i s) data_scheme
  in
  let send =
    match send_via with
    | Some f -> f
    | None -> (
        match kind with
        | Component.Service -> B.start_service
        | Component.Receiver -> B.send_broadcast
        | _ -> B.start_activity)
  in
  let sender =
    B.cls ~name:"Sndr"
      [
        B.meth ~name:"onCreate" ~params:1 (fun b ->
            let v = B.get_device_id b in
            let i = B.new_intent b in
            setup b i;
            B.put_extra b i ~key:"k" ~value:v;
            send b i);
      ]
  in
  let apk =
    Apk.make
      ~manifest:
        (Manifest.make ~package:"p"
           ~uses_permissions:[ Permission.read_phone_state ]
           ~components:
             [
               Component.make ~name:"Sndr" ~kind:Component.Activity ();
               Component.make ~name:"Rcvr" ~kind ~intent_filters:[ filter ] ();
             ]
           ())
      ~classes:
        [
          sender;
          B.cls ~name:"Rcvr"
            [
              B.meth
                ~name:
                  (match kind with
                  | Component.Service -> "onStartCommand"
                  | Component.Receiver -> "onReceive"
                  | _ -> "onCreate")
                ~params:1
                (fun b ->
                  let v = B.get_string_extra b 0 ~key:"k" in
                  B.write_log b ~payload:v);
            ];
        ]
  in
  let bundle = Bundle.of_models [ Extract.extract apk ] in
  let env =
    Encode.build
      ~config:{ Encode.with_mal_intent = false; with_mal_filter = false }
      ~witnesses:[ ("i", Encode.Wintent); ("c", Encode.Wcomponent) ]
      bundle
  in
  let open Separ_relog in
  let open Ast.Dsl in
  let i = Encode.witness env "i" in
  let c = Encode.witness env "c" in
  let formula =
    i <: Encode.device_intents env &&: Encode.resolves env i c
  in
  (* force c to be the receiver *)
  let receiver_atom = env.Encode.comp_atom_of "Rcvr" in
  let cset =
    Bounds.tuples_a env.Encode.bounds 1 [ [ receiver_atom ] ]
  in
  let receiver_rel = Relation.make "TheReceiver" 1 in
  Bounds.bound_exact env.Encode.bounds receiver_rel cset;
  let formula = formula &&: (c =: rel receiver_rel) in
  let problem =
    Solve.{ bounds = env.Encode.bounds; constraints = env.Encode.facts @ [ formula ] }
  in
  match Solve.solve problem with
  | Solve.Sat _, _ -> true
  | (Solve.Unsat | Solve.Unknown), _ -> false

(* The same question answered by the runtime matching rules. *)
let runtime_resolves ~action ~categories ~data_type ~data_scheme ~filter () =
  Intent_filter.matches
    ~intent:
      (Intent.make ~action ~categories ?data_type ?data_scheme ())
    filter

let agreement_case ~action ~categories ~data_type ~data_scheme ~filter () =
  let r = runtime_resolves ~action ~categories ~data_type ~data_scheme ~filter () in
  let f =
    relational_resolves ~action ~categories ~data_type ~data_scheme ~filter
      ~kind:Component.Service ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "relational = runtime for action %s" action)
    r f

let test_resolution_agreement () =
  let cases =
    [
      ("go", [], None, None, Intent_filter.make ~actions:[ "go" ] ());
      ("go", [], None, None, Intent_filter.make ~actions:[ "other" ] ());
      ( "go",
        [ "c1" ],
        None,
        None,
        Intent_filter.make ~actions:[ "go" ] ~categories:[ "c1"; "c2" ] () );
      ( "go",
        [ "c3" ],
        None,
        None,
        Intent_filter.make ~actions:[ "go" ] ~categories:[ "c1" ] () );
      ( "go",
        [],
        Some "t/x",
        None,
        Intent_filter.make ~actions:[ "go" ] ~data_types:[ "t/x" ] () );
      ( "go",
        [],
        Some "t/x",
        None,
        Intent_filter.make ~actions:[ "go" ] () );
      ( "go",
        [],
        None,
        Some "https",
        Intent_filter.make ~actions:[ "go" ] ~data_schemes:[ "https" ] () );
      ( "go",
        [],
        None,
        Some "ftp",
        Intent_filter.make ~actions:[ "go" ] ~data_schemes:[ "https" ] () );
      ( "go",
        [],
        Some "t/x",
        Some "https",
        Intent_filter.make ~actions:[ "go" ] ~data_types:[ "t/x" ]
          ~data_schemes:[ "https" ] () );
      ("go", [], None, None, Intent_filter.make ~actions:[ "go" ] ~data_types:[ "t" ] ());
    ]
  in
  List.iter
    (fun (action, categories, data_type, data_scheme, filter) ->
      agreement_case ~action ~categories ~data_type ~data_scheme ~filter ())
    cases

let test_kind_compatibility () =
  (* a startService intent does not resolve to a receiver, even when the
     filter matches *)
  let f = Intent_filter.make ~actions:[ "go" ] () in
  check "kind mismatch blocks resolution" false
    (relational_resolves ~send_via:B.start_service ~action:"go" ~categories:[]
       ~data_type:None ~data_scheme:None ~filter:f ~kind:Component.Receiver ())

(* --- signatures ---------------------------------------------------------------- *)

let analyze apks =
  let bundle = Bundle.of_models (List.map Extract.extract apks) in
  Separ_ase.Ase.analyze bundle

let kinds report =
  List.sort_uniq compare
    (List.map
       (fun v -> v.Separ_ase.Ase.v_kind)
       report.Separ_ase.Ase.r_vulnerabilities)

let hijack_app () =
  Apk.make
    ~manifest:
      (Manifest.make ~package:"h"
         ~uses_permissions:[ Permission.access_fine_location ]
         ~components:[ Component.make ~name:"H" ~kind:Component.Activity () ]
         ())
    ~classes:
      [
        B.cls ~name:"H"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let v = B.get_location b in
                let i = B.new_intent b in
                B.set_action b i "evt";
                B.put_extra b i ~key:"k" ~value:v;
                B.send_broadcast b i);
          ];
      ]

let test_hijack_fires () =
  check "hijack detected" true (List.mem "intent_hijack" (kinds (analyze [ hijack_app () ])))

let test_hijack_needs_sensitive_extras () =
  let benign =
    Apk.make
      ~manifest:
        (Manifest.make ~package:"b"
           ~components:[ Component.make ~name:"Bc" ~kind:Component.Activity () ]
           ())
      ~classes:
        [
          B.cls ~name:"Bc"
            [
              B.meth ~name:"onCreate" ~params:1 (fun b ->
                  let i = B.new_intent b in
                  B.set_action b i "evt";
                  let v = B.const_str b "plain" in
                  B.put_extra b i ~key:"k" ~value:v;
                  B.send_broadcast b i);
            ];
        ]
  in
  check "clean payload not flagged" false
    (List.mem "intent_hijack" (kinds (analyze [ benign ])))

let test_hijack_needs_implicit () =
  let explicit =
    Apk.make
      ~manifest:
        (Manifest.make ~package:"e"
           ~uses_permissions:[ Permission.access_fine_location ]
           ~components:
             [
               Component.make ~name:"Ec" ~kind:Component.Activity ();
               Component.make ~name:"Ed" ~kind:Component.Service ();
             ]
           ())
      ~classes:
        [
          B.cls ~name:"Ec"
            [
              B.meth ~name:"onCreate" ~params:1 (fun b ->
                  let v = B.get_location b in
                  let i = B.new_intent b in
                  B.set_class_name b i "Ed";
                  B.put_extra b i ~key:"k" ~value:v;
                  B.start_service b i);
            ];
          B.cls ~name:"Ed" [ B.meth ~name:"onStartCommand" ~params:1 (fun b -> B.nop b) ];
        ]
  in
  check "explicit intent not hijackable" false
    (List.mem "intent_hijack" (kinds (analyze [ explicit ])))

let launchable_app ~public () =
  Apk.make
    ~manifest:
      (Manifest.make ~package:"l"
         ~components:
           [
             (if public then
                Component.make ~name:"L" ~kind:Component.Service
                  ~intent_filters:[ Intent_filter.make ~actions:[ "do" ] () ]
                  ()
              else Component.make ~name:"L" ~kind:Component.Service ());
           ]
         ())
    ~classes:
      [
        B.cls ~name:"L"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"cmd" in
                B.write_log b ~payload:v);
          ];
      ]

let test_service_launch_fires () =
  check "service launch detected" true
    (List.mem "service_launch" (kinds (analyze [ launchable_app ~public:true () ])))

let test_private_component_safe () =
  check "private component not launchable" false
    (List.mem "service_launch" (kinds (analyze [ launchable_app ~public:false () ])))

let test_privilege_escalation_guard () =
  let vuln = analyze [ Test_ame.guarded_sms_apk false ] in
  check "unguarded sms service escalates" true
    (List.mem "privilege_escalation" (kinds vuln));
  let safe = analyze [ Test_ame.guarded_sms_apk true ] in
  check "guarded sms service safe" false
    (List.mem "privilege_escalation" (kinds safe))

let test_scenario_description () =
  let report = analyze [ hijack_app () ] in
  List.iter
    (fun v ->
      check "scenario described" true
        (String.length v.Separ_ase.Ase.v_scenario.Scenario.sc_description > 0))
    report.Separ_ase.Ase.r_vulnerabilities

let test_plugin_registration () =
  let before = List.length (Signatures.all ()) in
  let dummy =
    Signatures.
      {
        name = "always_unsat_plugin";
        config = { Encode.with_mal_intent = false; with_mal_filter = false };
        witnesses = [];
        formula = (fun _ -> Separ_relog.Ast.False_f);
        describe = (fun _ -> "never fires");
      }
  in
  Signatures.register dummy;
  check "registered" true (List.length (Signatures.all ()) = before + 1);
  check "findable" true (Signatures.find "always_unsat_plugin" <> None);
  (* and it never produces scenarios *)
  let report =
    Separ_ase.Ase.analyze
      ~signatures:[ dummy ]
      (Bundle.of_models [ Extract.extract (hijack_app ()) ])
  in
  check "no scenarios" true (report.Separ_ase.Ase.r_vulnerabilities = [])

let tests =
  [
    Alcotest.test_case "relational resolution = runtime matching" `Quick
      test_resolution_agreement;
    Alcotest.test_case "kind compatibility" `Quick test_kind_compatibility;
    Alcotest.test_case "hijack fires" `Quick test_hijack_fires;
    Alcotest.test_case "hijack needs sensitive extras" `Quick
      test_hijack_needs_sensitive_extras;
    Alcotest.test_case "hijack needs implicit intent" `Quick
      test_hijack_needs_implicit;
    Alcotest.test_case "service launch fires" `Quick test_service_launch_fires;
    Alcotest.test_case "private component safe" `Quick test_private_component_safe;
    Alcotest.test_case "privilege escalation vs guard" `Quick
      test_privilege_escalation_guard;
    Alcotest.test_case "scenario descriptions" `Quick test_scenario_description;
    Alcotest.test_case "plugin registration" `Quick test_plugin_registration;
  ]

(* --- meta-model consistency and Alloy emission ------------------------------- *)

let bundle_of apks = Bundle.of_models (List.map Extract.extract apks)

let test_meta_wellformedness () =
  let bundles =
    [
      bundle_of [ Separ.Demo.navigation_app (); Separ.Demo.messenger_app () ];
      bundle_of [ hijack_app () ];
      bundle_of (List.concat_map (fun c -> c.Separ_suites.Case.apks)
                   (Separ_suites.Table1.all_cases ()));
    ]
  in
  List.iter
    (fun bundle ->
      let bundle = Bundle.update_passive_targets bundle in
      List.iter
        (fun config ->
          let env = Encode.build ~config bundle in
          Alcotest.(check (list string))
            "no violated meta-model invariants" [] (Meta.check env))
        [
          { Encode.with_mal_intent = false; with_mal_filter = false };
          { Encode.with_mal_intent = true; with_mal_filter = true };
        ])
    bundles

let test_alloy_emission () =
  let bundle =
    bundle_of [ Separ.Demo.navigation_app (); Separ.Demo.messenger_app () ]
  in
  let text = Alloy_pp.bundle_spec bundle in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check "meta-model header" true (contains "module androidDeclaration");
  check "paper fact present" true (contains "fact IFandComponent");
  check "app module" true (contains "App_com_example_navigation");
  check "component sig" true (contains "one sig LocationFinder extends Service");
  check "filter actions" true (contains "actions = showLoc");
  check "path endpoints" true (contains "source = LOCATION")

let meta_tests =
  [
    Alcotest.test_case "meta-model invariants hold on encodings" `Quick
      test_meta_wellformedness;
    Alcotest.test_case "Alloy-style emission" `Quick test_alloy_emission;
  ]

let tests = tests @ meta_tests
