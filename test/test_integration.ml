(* End-to-end integration tests: the complete pipeline on the paper's
   motivating example, protection on the simulated device, and the CLI's
   textual APK workflow. *)

open Separ

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let demo_apks () = [ Demo.navigation_app (); Demo.messenger_app () ]

let test_motivating_example_vulns () =
  let analysis = analyze (demo_apks ()) in
  let kinds =
    List.sort_uniq compare
      (List.map (fun v -> v.Ase.v_kind) (vulnerabilities analysis))
  in
  Alcotest.(check (list string))
    "all four vulnerability classes present"
    [
      "information_leakage"; "intent_hijack"; "privilege_escalation";
      "service_launch";
    ]
    kinds

let test_paper_section6_policy_shape () =
  (* the paper's §VI policy: ICC received + receiver + LOCATION extra ->
     user prompt *)
  let analysis = analyze (demo_apks ()) in
  check "the §VI leak policy is synthesized" true
    (List.exists
       (fun p ->
         p.Policy.p_event = Policy.Icc_receive
         && p.Policy.p_action = Policy.Prompt
         && List.mem (Policy.Extras_include Resource.Location)
              p.Policy.p_conditions
         && List.exists
              (function Policy.Receiver_is _ -> true | _ -> false)
              p.Policy.p_conditions)
       (policies analysis))

let figure1_device ~protected =
  let device = Device.create () in
  Device.install device (Demo.navigation_app ());
  Device.install device (Demo.messenger_app ());
  Device.install device (Demo.relay_malware ());
  if protected then protect device (analyze (demo_apks ()));
  Device.start_component device ~pkg:"com.example.navigation"
    ~component:"LocationFinder" ~entry:"onStartCommand";
  Device.effects device

let test_figure1_exploit_works_unprotected () =
  let effects = figure1_device ~protected:false in
  check "location exfiltrated by SMS" true
    (List.exists (Effect.is_sms_with_taint Resource.Location) effects)

let test_figure1_exploit_blocked () =
  let effects = figure1_device ~protected:true in
  check "no tainted SMS" false
    (List.exists (Effect.is_sms_with_taint Resource.Location) effects);
  check "a policy blocked the chain" true (List.exists Effect.is_blocked effects);
  (* defense in depth notwithstanding, the hijack policy fires at the
     FIRST hop: the location never even reaches the malicious Relay *)
  check "blocked before reaching the malware" false
    (List.exists
       (function
         | Effect.Intent_delivered { receiver = "Relay"; _ } -> true
         | _ -> false)
       effects)

let test_protection_preserves_legitimate_use () =
  (* a benign app's implicit messaging (untainted payload) is untouched
     by the policies synthesized for the vulnerable demo bundle *)
  let module B = Builder in
  let benign =
    Apk.make
      ~manifest:
        (Manifest.make ~package:"com.benign"
           ~components:
             [
               Component.make ~name:"Ui" ~kind:Component.Activity ();
               Component.make ~name:"Sync" ~kind:Component.Service
                 ~intent_filters:
                   [ Intent_filter.make ~actions:[ "benign.sync" ] () ]
                 ();
             ]
           ())
      ~classes:
        [
          B.cls ~name:"Ui"
            [
              B.meth ~name:"onCreate" ~params:1 (fun b ->
                  let i = B.new_intent b in
                  B.set_action b i "benign.sync";
                  let v = B.const_str b "refresh" in
                  B.put_extra b i ~key:"op" ~value:v;
                  B.start_service b i);
            ];
          B.cls ~name:"Sync"
            [ B.meth ~name:"onStartCommand" ~params:1 (fun b -> B.nop b) ];
        ]
  in
  let apks = benign :: demo_apks () in
  let device = Device.create () in
  List.iter (Device.install device) apks;
  protect device (analyze apks);
  Device.start_component device ~pkg:"com.benign" ~component:"Ui";
  let effects = Device.effects device in
  check "benign intent delivered" true
    (List.exists
       (function
         | Effect.Intent_delivered { receiver = "Sync"; _ } -> true
         | _ -> false)
       effects);
  check "no prompts or blocks for benign traffic" false
    (List.exists
       (function
         | Effect.Prompt_shown _ | Effect.Delivery_blocked _ -> true
         | _ -> false)
       effects)

let test_policies_survive_serialization () =
  let analysis = analyze (demo_apks ()) in
  let text = Policy.to_string (policies analysis) in
  let restored = Policy.of_string text in
  check "round trip equal" true (restored = policies analysis)

let test_apk_text_pipeline () =
  (* write the demo apps as text, re-load, analyze: same vulnerabilities *)
  let dir = Filename.temp_file "separ" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let paths =
    List.mapi
      (fun i apk ->
        let path = Filename.concat dir (Printf.sprintf "a%d.apk.txt" i) in
        Separ_dalvik.Apk_text.save path apk;
        path)
      (demo_apks ())
  in
  let reloaded = List.map Separ_dalvik.Apk_text.load paths in
  let a1 = analyze (demo_apks ()) and a2 = analyze reloaded in
  check_int "same number of vulnerabilities"
    (List.length (vulnerabilities a1))
    (List.length (vulnerabilities a2));
  List.iter Sys.remove paths;
  Unix.rmdir dir

let test_analysis_report_stats () =
  let analysis = analyze (demo_apks ()) in
  let r = analysis.report in
  check_int "apps" 2 r.Ase.r_stats.Bundle.n_apps;
  check_int "components" 3 r.Ase.r_stats.Bundle.n_components;
  check "construction time recorded" true (r.Ase.r_construction_ms > 0.0);
  check "solver produced variables" true (r.Ase.r_vars > 0)

let tests =
  [
    Alcotest.test_case "motivating example vulnerabilities" `Quick
      test_motivating_example_vulns;
    Alcotest.test_case "paper §VI policy shape" `Quick
      test_paper_section6_policy_shape;
    Alcotest.test_case "Figure 1 exploit works unprotected" `Quick
      test_figure1_exploit_works_unprotected;
    Alcotest.test_case "Figure 1 exploit blocked" `Quick
      test_figure1_exploit_blocked;
    Alcotest.test_case "legitimate traffic preserved" `Quick
      test_protection_preserves_legitimate_use;
    Alcotest.test_case "policy serialization" `Quick
      test_policies_survive_serialization;
    Alcotest.test_case "textual APK pipeline" `Quick test_apk_text_pipeline;
    Alcotest.test_case "report statistics" `Quick test_analysis_report_stats;
  ]

(* --- future-work features: incremental analysis, two-hop leaks ------------- *)

let test_incremental_reanalysis () =
  let analysis = analyze (demo_apks ()) in
  let kinds a =
    List.sort_uniq compare (List.map (fun v -> v.Ase.v_kind) (vulnerabilities a))
  in
  check "privilege escalation before the update" true
    (List.mem "privilege_escalation" (kinds analysis));
  (* the messenger app is updated with a proper permission check *)
  let fixed = Demo.messenger_app ~guarded:true () in
  let analysis' = reanalyze analysis ~changed:[ fixed ] in
  check "privilege escalation gone after the update" false
    (List.mem "privilege_escalation" (kinds analysis'));
  (* the unchanged app's model was reused, not re-extracted *)
  let nav_model a =
    List.find
      (fun m -> m.App_model.am_package = "com.example.navigation")
      (Bundle.apps a.bundle)
  in
  check "unchanged model reused" true (nav_model analysis == nav_model analysis')

let forwarding_chain_apk () =
  let module B = Builder in
  Apk.make
    ~manifest:
      (Manifest.make ~package:"chain"
         ~uses_permissions:[ Permission.read_phone_state ]
         ~components:
           [
             Component.make ~name:"ChainSrc" ~kind:Component.Activity ();
             Component.make ~name:"ChainFwd" ~kind:Component.Service
               ~intent_filters:[ Intent_filter.make ~actions:[ "chain.a" ] () ]
               ();
             Component.make ~name:"ChainSink" ~kind:Component.Service
               ~intent_filters:[ Intent_filter.make ~actions:[ "chain.b" ] () ]
               ();
           ]
         ())
    ~classes:
      [
        B.cls ~name:"ChainSrc"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                let v = B.get_device_id b in
                let i = B.new_intent b in
                B.set_action b i "chain.a";
                B.put_extra b i ~key:"k" ~value:v;
                B.start_service b i);
          ];
        B.cls ~name:"ChainFwd"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"k" in
                let i = B.new_intent b in
                B.set_action b i "chain.b";
                B.put_extra b i ~key:"k" ~value:v;
                B.start_service b i);
          ];
        B.cls ~name:"ChainSink"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                let v = B.get_string_extra b 0 ~key:"k" in
                B.write_log b ~payload:v);
          ];
      ]

let test_two_hop_leak_detected () =
  let analysis = analyze [ forwarding_chain_apk () ] in
  let two_hop =
    List.filter
      (fun v -> v.Ase.v_kind = "information_leakage_2hop")
      (vulnerabilities analysis)
  in
  (match two_hop with
  | v :: _ ->
      Alcotest.(check (option string))
        "forwarder identified" (Some "ChainFwd")
        (Scenario.witness1 v.Ase.v_scenario "forwarderCmp");
      Alcotest.(check (option string))
        "final sink identified" (Some "ChainSink")
        (Scenario.witness1 v.Ase.v_scenario "finalCmp")
  | [] -> Alcotest.fail "two-hop leak not detected");
  (* the single-hop signature alone cannot see it *)
  check "single-hop signature misses the chain" false
    (List.exists
       (fun v ->
         v.Ase.v_kind = "information_leakage"
         && List.mem "ChainSink" v.Ase.v_components)
       (vulnerabilities analysis))

(* --- parallel analysis, budgets, graceful degradation ---------------------- *)

(* Comparable view of an analysis: kind + description of every scenario,
   in report order. *)
let scenario_keys report =
  List.map
    (fun v -> (v.Ase.v_kind, v.Ase.v_scenario.Scenario.sc_description))
    report.Ase.r_vulnerabilities

let test_parallel_matches_sequential () =
  let models = List.map Extract.extract (demo_apks ()) in
  let bundle = Bundle.of_models models in
  let baseline = Ase.analyze ~jobs:1 bundle in
  check "baseline finds vulnerabilities" true
    (baseline.Ase.r_vulnerabilities <> []);
  List.iter
    (fun jobs ->
      let report = Ase.analyze ~jobs bundle in
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "identical scenario set at -j %d" jobs)
        (scenario_keys baseline) (scenario_keys report);
      check "no degradation" true (report.Ase.r_degraded = []))
    [ 2; 4 ]

let test_incremental_matches_scratch () =
  (* The incremental (shared-encoding) path must produce byte-identical
     reports — not just the same scenario keys — to the from-scratch
     path once performance fields are stripped, at any pool width. *)
  let bundle = Bundle.of_models (List.map Extract.extract (demo_apks ())) in
  let render report =
    Separ_report.Report.to_string ~report:(Ase.strip_performance report)
      ~policies:[] ()
  in
  let scratch = Ase.analyze ~incremental:false bundle in
  check "scratch finds vulnerabilities" true
    (scratch.Ase.r_vulnerabilities <> []);
  check "scratch path reuses nothing" true
    (List.for_all
       (fun d -> d.Ase.sd_reused_clauses = 0 && d.Ase.sd_reused_learnts = 0)
       scratch.Ase.r_sig_deltas);
  let baseline = render scratch in
  List.iter
    (fun jobs ->
      let inc = Ase.analyze ~jobs bundle in
      check "incremental flag reported" true inc.Ase.r_incremental;
      (* The first signature on each fresh base starts from that base's
         clause count (possibly 0 when the base compiles to bounds and
         units only); later attaches on the same base must see the
         accumulated shared clauses, so the sum is positive. *)
      let total f = List.fold_left (fun acc d -> acc + f d) 0 in
      check
        (Printf.sprintf "signatures ride on shared clauses at -j %d" jobs)
        true
        (total (fun d -> d.Ase.sd_reused_clauses) inc.Ase.r_sig_deltas > 0);
      check
        (Printf.sprintf "translation cache is hit at -j %d" jobs)
        true
        (total (fun d -> d.Ase.sd_cache_hits) inc.Ase.r_sig_deltas > 0);
      Alcotest.(check string)
        (Printf.sprintf "byte-identical stripped report at -j %d" jobs)
        baseline (render inc))
    [ 1; 2 ]

let test_budget_degrades_gracefully () =
  let bundle = Bundle.of_models (List.map Extract.extract (demo_apks ())) in
  let baseline = Ase.analyze bundle in
  let vulnerable_kinds =
    List.sort_uniq compare
      (List.map (fun v -> v.Ase.v_kind) baseline.Ase.r_vulnerabilities)
  in
  let budget =
    { Separ_sat.Solver.b_max_conflicts = Some 0; b_max_time_ms = None }
  in
  (* Sequential and parallel runs must both terminate (no hang) with no
     scenarios and the undecided signatures recorded as budget-exhausted.
     Signatures whose encoding is trivially unsat still complete — a
     definitive Unsat costs no budget — so only the signatures that
     needed actual search degrade; that includes every signature that
     found a scenario in the unbudgeted baseline. *)
  List.iter
    (fun jobs ->
      let report = Ase.analyze ~jobs ~budget bundle in
      check_int "no scenarios under a zero budget" 0
        (List.length report.Ase.r_vulnerabilities);
      check "some signatures degraded" true (report.Ase.r_degraded <> []);
      let degraded_kinds = List.map (fun d -> d.Ase.d_kind) report.Ase.r_degraded in
      List.iter
        (fun kind ->
          check
            (Printf.sprintf "baseline-vulnerable %s degraded at -j %d" kind
               jobs)
            true
            (List.mem kind degraded_kinds))
        vulnerable_kinds;
      List.iter
        (fun d -> Alcotest.(check string) "reason" "budget_exhausted"
            d.Ase.d_reason)
        report.Ase.r_degraded)
    [ 1; 2 ]

let test_worker_crash_degrades () =
  let bundle = Bundle.of_models (List.map Extract.extract (demo_apks ())) in
  let crashy =
    { (List.hd (Signatures.all ())) with
      Signatures.name = "crashy";
      formula = (fun _ -> failwith "deliberate crash");
    }
  in
  let signatures = Signatures.all () @ [ crashy ] in
  let report = Ase.analyze ~jobs:2 ~signatures bundle in
  (match report.Ase.r_degraded with
  | [ d ] ->
      Alcotest.(check string) "crashy signature degraded" "crashy"
        d.Ase.d_kind;
      check "reason names the crash" true
        (String.length d.Ase.d_reason >= 14
        && String.sub d.Ase.d_reason 0 14 = "worker_crashed")
  | _ -> Alcotest.fail "expected exactly the crashy signature degraded");
  (* the healthy signatures still produced their scenarios *)
  let healthy = Ase.analyze ~jobs:2 bundle in
  Alcotest.(check (list (pair string string)))
    "healthy signatures unaffected by the crash"
    (scenario_keys healthy) (scenario_keys report)

let test_bundle_sharding_matches_sequential () =
  (* Sharding across bundles (one pool task per bundle, persistent
     workers) must be invisible in the results: stripped reports
     byte-identical to per-bundle -j 1 runs, in bundle order. *)
  let bundles =
    [
      Bundle.of_models (List.map Extract.extract (demo_apks ()));
      Bundle.of_models
        (List.map Extract.extract
           [
             Demo.navigation_app ();
             Demo.messenger_app ();
             Demo.relay_malware ();
           ]);
      Bundle.of_models [ Extract.extract (forwarding_chain_apk ()) ];
    ]
  in
  let render report =
    Separ_report.Report.to_string ~report:(Ase.strip_performance report)
      ~policies:[] ()
  in
  let baseline = List.map (fun b -> render (Ase.analyze ~jobs:1 b)) bundles in
  check "baseline bundles find vulnerabilities" true
    (List.exists (fun s -> s <> "") baseline);
  List.iter
    (fun jobs ->
      let sharded =
        Ase.analyze_many ~jobs ~shard_bundles:true bundles
      in
      check_int
        (Printf.sprintf "one report per bundle at -j %d" jobs)
        (List.length bundles) (List.length sharded);
      List.iteri
        (fun i report ->
          check
            (Printf.sprintf "bundle %d not degraded at -j %d" i jobs)
            true
            (report.Ase.r_degraded = []);
          Alcotest.(check string)
            (Printf.sprintf
               "bundle %d stripped report byte-identical at -j %d" i jobs)
            (List.nth baseline i) (render report))
        sharded)
    [ 2; 4 ]

let test_truncation_reported () =
  let bundle = Bundle.of_models (List.map Extract.extract (demo_apks ())) in
  let full = Ase.analyze bundle in
  check "full run is not truncated" true (full.Ase.r_truncated = []);
  let capped = Ase.analyze ~limit_per_sig:1 bundle in
  check "a 1-scenario cap truncates some signature" true
    (capped.Ase.r_truncated <> []);
  List.iter
    (fun name ->
      check "truncated names are signature names" true
        (List.exists
           (fun s -> s.Signatures.name = name)
           (Signatures.all ())))
    capped.Ase.r_truncated

let test_two_hop_leak_at_runtime () =
  (* the chain is a real leak: IMEI reaches the log via two hops *)
  let d = Device.create () in
  Device.install d (forwarding_chain_apk ());
  Device.start_component d ~pkg:"chain" ~component:"ChainSrc";
  check "IMEI logged after two hops" true
    (List.exists
       (function
         | Effect.Log_written { taint; _ } -> List.mem Resource.Imei taint
         | _ -> false)
       (Device.effects d))

let extension_tests =
  [
    Alcotest.test_case "incremental reanalysis" `Quick
      test_incremental_reanalysis;
    Alcotest.test_case "two-hop leak detected" `Quick test_two_hop_leak_detected;
    Alcotest.test_case "two-hop leak real at runtime" `Quick
      test_two_hop_leak_at_runtime;
    Alcotest.test_case "parallel analyze matches sequential" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "incremental matches from-scratch byte-for-byte" `Quick
      test_incremental_matches_scratch;
    Alcotest.test_case "budget degrades gracefully" `Quick
      test_budget_degrades_gracefully;
    Alcotest.test_case "worker crash degrades its signature" `Quick
      test_worker_crash_degrades;
    Alcotest.test_case "bundle sharding matches sequential" `Quick
      test_bundle_sharding_matches_sequential;
    Alcotest.test_case "truncation reported" `Quick test_truncation_reported;
  ]

let tests = tests @ extension_tests
