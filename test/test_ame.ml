(* Tests for AME, the model extractor: architecture extraction from the
   manifest, multi-value intent expansion, code-enforced permissions,
   passive-intent resolution (Algorithm 1), and extraction metadata. *)

open Separ_android
open Separ_dalvik
open Separ_ame
module B = Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let nav_apk () =
  Apk.make
    ~manifest:
      (Manifest.make ~package:"nav"
         ~uses_permissions:[ Permission.access_fine_location ]
         ~components:
           [ Component.make ~name:"Loc" ~kind:Component.Service () ]
         ())
    ~classes:
      [
        B.cls ~name:"Loc"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                let v = B.get_location b in
                let i = B.new_intent b in
                B.set_action b i "showLoc";
                B.put_extra b i ~key:"loc" ~value:v;
                B.start_service b i);
          ];
      ]

let test_extract_motivating () =
  let model = Extract.extract (nav_apk ()) in
  check "package" true (model.App_model.am_package = "nav");
  check_int "one component" 1 (List.length model.App_model.am_components);
  let c = List.hd model.App_model.am_components in
  check "service kind" true (c.App_model.cm_kind = Component.Service);
  check "private" false c.App_model.cm_public;
  (match c.App_model.cm_intents with
  | [ im ] ->
      Alcotest.(check (option string)) "action" (Some "showLoc") im.App_model.im_action;
      check "extras tainted" true (im.App_model.im_extras = [ Resource.Location ]);
      check "implicit" true (im.App_model.im_target = None)
  | l -> Alcotest.failf "expected 1 intent model, got %d" (List.length l));
  check "path LOCATION->ICC" true
    (List.exists
       (fun p ->
         p.App_model.pm_source = Resource.Location
         && p.App_model.pm_sink = Resource.Icc)
       c.App_model.cm_paths);
  check "uses location permission" true
    (List.mem Permission.access_fine_location c.App_model.cm_uses_permissions)

let test_extraction_metadata () =
  let model = Extract.extract (nav_apk ()) in
  check "size positive" true (model.App_model.am_size > 0);
  check "timed" true (model.App_model.am_extraction_ms >= 0.0)

let test_multivalue_expansion () =
  let apk =
    Apk.make
      ~manifest:
        (Manifest.make ~package:"mv"
           ~components:[ Component.make ~name:"S" ~kind:Component.Service () ]
           ())
      ~classes:
        [
          B.cls ~name:"S"
            [
              B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                  let i = B.new_intent b in
                  let c = B.get_string_extra b 0 ~key:"w" in
                  let els = B.fresh_label b in
                  let fin = B.fresh_label b in
                  B.if_eqz b c els;
                  B.set_action b i "a1";
                  B.goto b fin;
                  B.place_label b els;
                  B.set_action b i "a2";
                  B.place_label b fin;
                  B.start_service b i);
            ];
        ]
  in
  let model = Extract.extract apk in
  let c = List.hd model.App_model.am_components in
  (* one intent model per resolved action value *)
  check_int "two intent models" 2 (List.length c.App_model.cm_intents);
  let actions =
    List.sort compare
      (List.filter_map (fun i -> i.App_model.im_action) c.App_model.cm_intents)
  in
  Alcotest.(check (list string)) "expanded actions" [ "a1"; "a2" ] actions

let guarded_sms_apk guarded =
  Apk.make
    ~manifest:
      (Manifest.make ~package:"sms" ~uses_permissions:[ Permission.send_sms ]
         ~components:
           [
             Component.make ~name:"M" ~kind:Component.Service
               ~intent_filters:[ Intent_filter.make ~actions:[ "send" ] () ]
               ();
           ]
         ())
    ~classes:
      [
        B.cls ~name:"M"
          [
            B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                let n = B.get_string_extra b 0 ~key:"n" in
                if guarded then begin
                  let res = B.check_calling_permission b Permission.send_sms in
                  let deny = B.fresh_label b in
                  B.if_eqz b res deny;
                  B.send_text_message b ~number:n ~body:n;
                  B.place_label b deny
                end
                else B.send_text_message b ~number:n ~body:n);
          ];
      ]

let test_enforced_permission () =
  let unguarded = Extract.extract (guarded_sms_apk false) in
  let cu = List.hd unguarded.App_model.am_components in
  check "unguarded: open path" true
    (List.exists
       (fun p -> p.App_model.pm_sink = Resource.Sms)
       cu.App_model.cm_paths);
  check "unguarded: nothing enforced" true
    (cu.App_model.cm_required_permissions = []);
  let guarded = Extract.extract (guarded_sms_apk true) in
  let cg = List.hd guarded.App_model.am_components in
  check "guarded: path suppressed" false
    (List.exists
       (fun p -> p.App_model.pm_sink = Resource.Sms)
       cg.App_model.cm_paths);
  check "guarded: permission recorded as enforced" true
    (List.mem Permission.send_sms cg.App_model.cm_required_permissions)

let test_manifest_permission_attr () =
  let apk =
    Apk.make
      ~manifest:
        (Manifest.make ~package:"p"
           ~components:
             [
               Component.make ~name:"S" ~kind:Component.Service
                 ~permission:Permission.send_sms ();
             ]
           ())
      ~classes:[ B.cls ~name:"S" [] ]
  in
  let model = Extract.extract apk in
  let c = List.hd model.App_model.am_components in
  check "manifest permission kept" true
    (List.mem Permission.send_sms c.App_model.cm_required_permissions)

(* --- Algorithm 1: passive intents ------------------------------------------- *)

let for_result_bundle () =
  let apk =
    Apk.make
      ~manifest:
        (Manifest.make ~package:"fr"
           ~uses_permissions:[ Permission.read_phone_state ]
           ~components:
             [
               Component.make ~name:"Origin" ~kind:Component.Activity ();
               Component.make ~name:"Responder" ~kind:Component.Activity
                 ~intent_filters:[ Intent_filter.make ~actions:[ "req" ] () ]
                 ();
             ]
           ())
      ~classes:
        [
          B.cls ~name:"Origin"
            [
              B.meth ~name:"onCreate" ~params:1 (fun b ->
                  let i = B.new_intent b in
                  B.set_action b i "req";
                  B.start_activity_for_result b i);
              B.meth ~name:"onActivityResult" ~params:1 (fun b ->
                  let v = B.get_string_extra b 0 ~key:"out" in
                  B.write_log b ~payload:v);
            ];
          B.cls ~name:"Responder"
            [
              B.meth ~name:"onCreate" ~params:1 (fun b ->
                  let v = B.get_device_id b in
                  let i = B.new_intent b in
                  B.put_extra b i ~key:"out" ~value:v;
                  B.set_result b i);
            ];
        ]
  in
  Bundle.of_models [ Extract.extract apk ]

let test_passive_intent_resolution () =
  let bundle = for_result_bundle () in
  let passive_before =
    List.filter (fun (_, _, i) -> i.App_model.im_passive) (Bundle.all_intents bundle)
  in
  check_int "one passive intent" 1 (List.length passive_before);
  let (_, _, p0) = List.hd passive_before in
  Alcotest.(check (list string)) "unresolved before Algorithm 1" []
    p0.App_model.im_resolved_targets;
  let bundle = Bundle.update_passive_targets bundle in
  let passive =
    List.filter (fun (_, _, i) -> i.App_model.im_passive) (Bundle.all_intents bundle)
  in
  let (_, _, p) = List.hd passive in
  Alcotest.(check (list string))
    "resolved to the requesting component" [ "Origin" ]
    p.App_model.im_resolved_targets

let test_bundle_stats () =
  let bundle = for_result_bundle () in
  let st = Bundle.stats bundle in
  check_int "apps" 1 st.Bundle.n_apps;
  check_int "components" 2 st.Bundle.n_components;
  check_int "filters" 1 st.Bundle.n_intent_filters;
  check "intents counted" true (st.Bundle.n_intents >= 2)

let test_resolves_to () =
  let bundle = for_result_bundle () in
  let find name =
    match Bundle.find_component bundle name with
    | Some (_, c) -> c
    | None -> Alcotest.failf "missing component %s" name
  in
  let responder = find "Responder" in
  let origin = find "Origin" in
  let request =
    List.find
      (fun (_, _, i) -> i.App_model.im_wants_result)
      (Bundle.all_intents bundle)
    |> fun (_, _, i) -> i
  in
  check "request resolves to Responder" true
    (Bundle.resolves_to request responder);
  check "request does not resolve to Origin" false
    (Bundle.resolves_to request origin)

let tests =
  [
    Alcotest.test_case "motivating example model" `Quick test_extract_motivating;
    Alcotest.test_case "extraction metadata" `Quick test_extraction_metadata;
    Alcotest.test_case "multi-value expansion" `Quick test_multivalue_expansion;
    Alcotest.test_case "code-enforced permission" `Quick test_enforced_permission;
    Alcotest.test_case "manifest permission attribute" `Quick
      test_manifest_permission_attr;
    Alcotest.test_case "Algorithm 1 passive intents" `Quick
      test_passive_intent_resolution;
    Alcotest.test_case "bundle stats" `Quick test_bundle_stats;
    Alcotest.test_case "resolves_to" `Quick test_resolves_to;
  ]
