(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe                 run every experiment
     dune exec bench/main.exe -- table1       one experiment
     dune exec bench/main.exe -- rq2 --bundles 20

   Experiments (see DESIGN.md's index):
     table1            Table I   tool-comparison on DroidBench + ICC-Bench
     rq2               §VII.B    vulnerable apps per category over 4,000 apps
     fig5              Figure 5  extraction time vs app size
     table2            Table II  bundle statistics and solver timing
     rq4               §VII.D    policy enforcement overhead (33 reps, 95% CI)
     scenario          §V/§VI    the running example's exploit + policy
     parallel          ASE at -j 1/2/4 over Table I (BENCH_parallel.json)
     incremental       shared-base vs from-scratch ASE (BENCH_incremental.json)
     cache             persistent cross-run cache: cold vs warm vs one-app-changed
                       (BENCH_cache.json)
     serve             app-store daemon: footprint-indexed selective re-analysis
                       of an upload stream vs full repair (BENCH_serve.json)
     enforce           compiled PDP vs linear scan at 10/100/1000 rules +
                       device-fleet soak with hot swaps (BENCH_enforce.json)
     ablation-minimal  minimal vs arbitrary scenarios
     ablation-context  k = 1 vs k = 0 context sensitivity
     ablation-pruning  entry-point reachability pruning on vs off
     kernels           Bechamel micro-benchmarks of the pipeline stages *)

open Separ
module Generator = Separ_workload.Generator
module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics
module Log = Separ_obs.Log
module Telemetry = Separ_report.Telemetry
module Json = Separ_report.Json
module Provenance = Separ_report.Provenance
module History = Separ_report.History

let header title =
  Printf.printf "\n==================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================\n%!"

(* --- bench trajectory ------------------------------------------------------- *)

let history_path = "BENCH_HISTORY.ndjson"

(* Collected once per process, so every history line of one bench run
   carries the same commit/host/timestamp stamp. *)
let provenance = lazy (Provenance.json (Provenance.collect ()))

(* Append one (section, mode) trajectory point to BENCH_HISTORY.ndjson.
   The BENCH_*.json snapshots are overwritten on every run; the history
   file only grows, and `separ benchdiff` gates on it. *)
let record_history ?(mode = "full") ?(extra = []) ~section wall_ms =
  History.append ~path:history_path
    {
      History.e_section = section;
      e_mode = mode;
      e_wall_ms = wall_ms;
      e_provenance = Lazy.force provenance;
      e_extra = extra;
    }

(* Descriptive statistics come from the shared implementation so every
   table reports the same (nearest-rank) percentile estimator.  The
   confidence intervals use the sample (n-1) standard deviation and
   Student-t critical values — the paper's ±1.76% is a t-interval, and z
   = 1.96 with a population stddev understates the interval at n = 33. *)
let mean = Separ_report.Stats.mean
let percentile = Separ_report.Stats.percentile
let ci95 = Separ_report.Stats.ci95_halfwidth

(* --- Table I ---------------------------------------------------------------- *)

let run_table1 () =
  header "Table I: ICC vulnerability detection (DroidBench 2.0 + ICC-Bench)";
  let rows, elapsed_ms =
    Trace.timed "bench.table1" (fun () -> Separ_suites.Table1.run ())
  in
  print_string (Separ_suites.Table1.render rows);
  Printf.printf "\n(paper: DidFail 55/37/44, AmanDroid 86/48/63, SEPAR 100/97/98)\n";
  Printf.printf "elapsed: %.1fs\n%!" (elapsed_ms /. 1000.0);
  record_history ~section:"table1"
    ~extra:[ ("cases", Json.Int (List.length rows)) ]
    elapsed_ms

(* --- shared corpus ------------------------------------------------------------ *)

let corpus = lazy (Generator.generate ())

(* --- RQ2 ---------------------------------------------------------------------- *)

let run_rq2 ~bundles:n_bundles () =
  header
    (Printf.sprintf
       "RQ2: vulnerable apps per category (%d bundles of 50 apps)" n_bundles);
  let corpus = Lazy.force corpus in
  let bundles = Generator.bundles ~size:50 corpus in
  let chosen = List.filteri (fun i _ -> i < n_bundles) bundles in
  let tally : (string * string, unit) Hashtbl.t = Hashtbl.create 256 in
  let (), total_ms =
    Trace.timed "bench.rq2" (fun () ->
        let t0 = Unix.gettimeofday () in
        List.iteri
          (fun bi bundle_apps ->
            Trace.with_span "bench.rq2.bundle" (fun () ->
                let models =
                  List.map (fun g -> Extract.extract g.Generator.apk) bundle_apps
                in
                let bundle = Bundle.of_models models in
                let report = Ase.analyze ~limit_per_sig:40 bundle in
                List.iter
                  (fun v ->
                    let kind =
                      match v.Ase.v_kind with
                      | "activity_launch" | "service_launch" ->
                          "Activity/Service launch"
                      | "intent_hijack" -> "Intent hijack"
                      | "information_leakage" -> "Information leakage"
                      | "privilege_escalation" -> "Privilege escalation"
                      | k -> k
                    in
                    List.iter
                      (fun app -> Hashtbl.replace tally (kind, app) ())
                      (Ase.vulnerable_apps report bundle v.Ase.v_kind))
                  report.Ase.r_vulnerabilities);
            if (bi + 1) mod 10 = 0 then
              Printf.printf "  ... %d/%d bundles (%.0fs)\n%!" (bi + 1)
                (List.length chosen)
                (Unix.gettimeofday () -. t0))
          chosen)
  in
  let count kind =
    Hashtbl.fold (fun (k, _) () acc -> if k = kind then acc + 1 else acc) tally 0
  in
  let scale = 80.0 /. float_of_int (List.length chosen) in
  Printf.printf "\n%-28s %-10s %-12s %s\n" "Category" "measured"
    "(scaled x80)" "paper";
  List.iter
    (fun (kind, paper) ->
      let m = count kind in
      Printf.printf "%-28s %-10d %-12.0f %d\n" kind m
        (float_of_int m *. scale)
        paper)
    [
      ("Intent hijack", 97);
      ("Activity/Service launch", 124);
      ("Information leakage", 128);
      ("Privilege escalation", 36);
    ];
  Printf.printf "elapsed: %.1fs\n%!" (total_ms /. 1000.0);
  record_history ~section:"rq2"
    ~extra:[ ("bundles", Json.Int (List.length chosen)) ]
    total_ms

(* --- Figure 5 ------------------------------------------------------------------ *)

let run_fig5 ~apps:n_apps () =
  header
    (Printf.sprintf "Figure 5: model extraction time vs app size (%d apps)"
       n_apps);
  let corpus = List.filteri (fun i _ -> i < n_apps) (Lazy.force corpus) in
  let samples, total_ms =
    Trace.timed "bench.fig5" (fun () ->
        List.map
          (fun g ->
            let model = Extract.extract g.Generator.apk in
            (g.Generator.store, model.App_model.am_size,
             model.App_model.am_extraction_ms))
          corpus)
  in
  let total_s = total_ms /. 1000.0 in
  (* per-store series *)
  Printf.printf "%-12s %6s %10s %10s %10s\n" "store" "apps" "mean size"
    "mean ms" "p95 ms";
  List.iter
    (fun store ->
      let mine = List.filter (fun (s, _, _) -> s = store) samples in
      if mine <> [] then
        Printf.printf "%-12s %6d %10.0f %10.2f %10.2f\n" store
          (List.length mine)
          (mean (List.map (fun (_, sz, _) -> float_of_int sz) mine))
          (mean (List.map (fun (_, _, ms) -> ms) mine))
          (percentile 0.95 (List.map (fun (_, _, ms) -> ms) mine)))
    [ "play"; "fdroid"; "malgenome"; "bazaar" ];
  (* the scatter, as size-bucketed series *)
  Printf.printf "\nsize bucket -> mean extraction ms (the Fig. 5 scatter):\n";
  let buckets = [ 0; 200; 400; 600; 900; 1200; 1600; 2200; 3000 ] in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ a ] -> [ (a, max_int) ]
    | [] -> []
  in
  List.iter
    (fun (lo, hi) ->
      let mine =
        List.filter (fun (_, sz, _) -> sz >= lo && sz < hi) samples
      in
      if mine <> [] then
        Printf.printf "  [%5d, %5s) n=%4d  %.2f ms\n" lo
          (if hi = max_int then "inf" else string_of_int hi)
          (List.length mine)
          (mean (List.map (fun (_, _, ms) -> ms) mine)))
    (pairs buckets);
  let all_ms = List.map (fun (_, _, ms) -> ms) samples in
  let under_2min =
    List.length (List.filter (fun ms -> ms < 120_000.0) all_ms)
  in
  Printf.printf
    "\ntotal: %.1fs for %d apps (linear in total size); %.1f%% of apps \
     under 2 minutes (paper: 95%%)\n%!"
    total_s (List.length samples)
    (100.0 *. float_of_int under_2min /. float_of_int (List.length samples));
  record_history ~section:"fig5"
    ~extra:[ ("apps", Json.Int (List.length samples)) ]
    total_ms

(* --- Table II ------------------------------------------------------------------- *)

let run_table2 ~bundles:n_bundles () =
  header
    (Printf.sprintf "Table II: per-bundle statistics and solver timing (%d bundles)"
       n_bundles);
  let corpus = Lazy.force corpus in
  let bundles = Generator.bundles ~size:50 corpus in
  let chosen = List.filteri (fun i _ -> i < n_bundles) bundles in
  let rows =
    List.map
      (fun bundle_apps ->
        Trace.with_span "bench.table2.bundle" (fun () ->
            let models =
              List.map (fun g -> Extract.extract g.Generator.apk) bundle_apps
            in
            let bundle = Bundle.of_models models in
            let report = Ase.analyze ~limit_per_sig:40 bundle in
            let st = report.Ase.r_stats in
            Trace.add_attr "construction_ms"
              (Trace.Float report.Ase.r_construction_ms);
            Trace.add_attr "solving_ms" (Trace.Float report.Ase.r_solving_ms);
            ( float_of_int st.Bundle.n_components,
              float_of_int st.Bundle.n_intents,
              float_of_int st.Bundle.n_intent_filters,
              report.Ase.r_construction_ms /. 1000.0,
              report.Ase.r_solving_ms /. 1000.0 )))
      chosen
  in
  let avg f = mean (List.map f rows) in
  Printf.printf "%-14s %-10s %-14s %-18s %-14s\n" "Components" "Intents"
    "IntentFilters" "Construction(s)" "Analysis(s)";
  Printf.printf "%-14.0f %-10.0f %-14.0f %-18.2f %-14.2f\n"
    (avg (fun (c, _, _, _, _) -> c))
    (avg (fun (_, i, _, _, _) -> i))
    (avg (fun (_, _, f, _, _) -> f))
    (avg (fun (_, _, _, c, _) -> c))
    (avg (fun (_, _, _, _, s) -> s));
  Printf.printf "(paper:        313        322        148           260                57)\n";
  Printf.printf
    "shape check: construction dominates SAT solving, as in the paper: %b\n%!"
    (avg (fun (_, _, _, c, _) -> c) > avg (fun (_, _, _, _, s) -> s))

(* --- RQ4 ------------------------------------------------------------------------- *)

(* A benchmark app that performs [n] startService ICC operations. *)
let rq4_apps n =
  let module B = Builder in
  let caller =
    B.cls ~name:"Caller"
      [
        B.meth ~name:"onCreate" ~params:1 (fun b ->
            for _ = 1 to n do
              let i = B.new_intent b in
              B.set_class_name b i "Callee";
              let v = B.const_str b "x" in
              B.put_extra b i ~key:"k" ~value:v;
              B.start_service b i
            done);
      ]
  in
  let callee =
    (* the callee does representative work, as a real service would *)
    B.cls ~name:"Callee"
      [
        B.meth ~name:"onStartCommand" ~params:1 (fun b ->
            let v = B.get_string_extra b 0 ~key:"k" in
            let skip = B.fresh_label b in
            B.if_eqz b v skip;
            B.sput b ~field:"last" ~src:v;
            let w = B.sget b ~field:"last" in
            B.move b ~dst:0 ~src:w;
            B.place_label b skip;
            let done_ = B.const_str b "handled" in
            B.invoke b (Api.mref Api.c_notification "notify") [ done_ ]);
      ]
  in
  Apk.make
    ~manifest:
      (Manifest.make ~package:"bench.icc"
         ~components:
           [
             Component.make ~name:"Caller" ~kind:Component.Activity ();
             Component.make ~name:"Callee" ~kind:Component.Service
               ~exported:true ();
           ]
         ())
    ~classes:[ caller; callee ]

(* A benchmark app performing [n] non-ICC operations. *)
let rq4_non_icc_app n =
  let module B = Builder in
  Apk.make
    ~manifest:
      (Manifest.make ~package:"bench.cpu"
         ~components:[ Component.make ~name:"Worker" ~kind:Component.Activity () ]
         ())
    ~classes:
      [
        B.cls ~name:"Worker"
          [
            B.meth ~name:"onCreate" ~params:1 (fun b ->
                for k = 1 to n do
                  let v = B.const_str b (string_of_int k) in
                  B.sput b ~field:"acc" ~src:v
                done);
          ];
      ]

let demo_policies () =
  (* realistic policy store: the demo bundle's synthesized policies plus
     the benchmark component guarded by a prompt-on-foreign-sender rule *)
  let analysis = analyze [ Demo.navigation_app (); Demo.messenger_app () ] in
  analysis.policies
  @ [
      Policy.
        {
          p_id = "bench-guard";
          p_event = Icc_receive;
          p_conditions =
            [ Receiver_is "Callee"; Sender_app_not_installed ];
          p_action = Prompt;
          p_reason = "benchmark";
        };
    ]

let time_run apk ~pkg ~component ~enforcement ~policies =
  let d = Device.create () in
  Device.install d apk;
  if enforcement then begin
    Device.set_policies d policies [ "bench.icc"; "bench.cpu" ];
    Device.set_enforcement d true
  end;
  let (), ms =
    Trace.timed "bench.rq4.launch"
      ~attrs:[ Trace.attr_bool "enforcement" enforcement ]
      (fun () -> Device.start_component d ~pkg ~component)
  in
  ms /. 1000.0

let run_rq4 () =
  header "RQ4: policy enforcement overhead (33 repetitions, 95% CI)";
  let n_ops = 2000 in
  let reps = 33 in
  let policies = demo_policies () in
  let apk = rq4_apps n_ops in
  (* warm up *)
  ignore (time_run apk ~pkg:"bench.icc" ~component:"Caller" ~enforcement:false ~policies);
  let run_icc enforcement =
    let xs =
      List.sort compare
        (List.init 3 (fun _ ->
             time_run apk ~pkg:"bench.icc" ~component:"Caller" ~enforcement
               ~policies))
    in
    List.nth xs 1
  in
  let overheads =
    List.init reps (fun k ->
        if k mod 2 = 0 then
          let base = run_icc false in
          let hooked = run_icc true in
          100.0 *. (hooked -. base) /. base
        else
          let hooked = run_icc true in
          let base = run_icc false in
          100.0 *. (hooked -. base) /. base)
  in
  let m = mean overheads in
  (* t(n-1) * s_{n-1} / sqrt n: the paper's ±1.76% is a Student-t
     interval, not a z interval over the population stddev *)
  let ci = ci95 overheads in
  Printf.printf
    "ICC-heavy workload (%d startService calls): overhead %.2f%% +- %.2f%% \
     at 95%% confidence\n"
    n_ops m ci;
  Printf.printf "  p50 %.2f%%  p95 %.2f%%  p99 %.2f%%\n"
    (percentile 0.50 overheads) (percentile 0.95 overheads)
    (percentile 0.99 overheads);
  Printf.printf "(paper: 11.80%% +- 1.76%%)\n";
  (* non-ICC calls: hooks only intercept ICC, so overhead must vanish *)
  let cpu = rq4_non_icc_app 60000 in
  ignore (time_run cpu ~pkg:"bench.cpu" ~component:"Worker" ~enforcement:false ~policies);
  let run_cpu enforcement =
    (* median of three to shed scheduler jitter *)
    let xs =
      List.sort compare
        (List.init 3 (fun _ ->
             time_run cpu ~pkg:"bench.cpu" ~component:"Worker" ~enforcement
               ~policies))
    in
    List.nth xs 1
  in
  let diffs =
    List.init reps (fun k ->
        (* alternate measurement order across repetitions *)
        if k mod 2 = 0 then
          let base = run_cpu false in
          let hooked = run_cpu true in
          100.0 *. (hooked -. base) /. base
        else
          let hooked = run_cpu true in
          let base = run_cpu false in
          100.0 *. (hooked -. base) /. base)
  in
  let md = mean diffs in
  let cid = ci95 diffs in
  Printf.printf
    "non-ICC workload: %.2f%% +- %.2f%% overhead (paper: no overhead on \
     non-ICC calls)\n"
    md cid;
  Printf.printf "  p50 %.2f%%  p95 %.2f%%  p99 %.2f%%\n%!"
    (percentile 0.50 diffs) (percentile 0.95 diffs) (percentile 0.99 diffs)

(* --- the running example (E6) --------------------------------------------------- *)

let run_scenario () =
  header "Running example (paper SS V-VI): synthesized exploit and policy";
  let analysis = analyze [ Demo.navigation_app (); Demo.messenger_app () ] in
  List.iter
    (fun v ->
      Fmt.pr "--- %s ---@.%a@.@." v.Ase.v_kind Scenario.pp v.Ase.v_scenario)
    (vulnerabilities analysis);
  Fmt.pr "--- synthesized policies ---@.";
  List.iter (fun p -> Fmt.pr "%a@.@." Policy.pp p) (policies analysis)

(* --- ablations -------------------------------------------------------------------- *)

let run_ablation_minimal () =
  header "Ablation: minimal (Aluminum) vs arbitrary (plain SAT) scenarios";
  let models =
    List.map Extract.extract [ Demo.navigation_app (); Demo.messenger_app () ]
  in
  let bundle = Bundle.update_passive_targets (Bundle.of_models models) in
  let sig_ = List.hd (Signatures.all ()) in
  let measure minimal =
    let env =
      Separ_specs.Encode.build ~config:sig_.Signatures.config
        ~witnesses:sig_.Signatures.witnesses bundle
    in
    let problem =
      Separ_relog.Solve.
        {
          bounds = env.Separ_specs.Encode.bounds;
          constraints =
            env.Separ_specs.Encode.facts @ [ sig_.Signatures.formula env ];
        }
    in
    let session = Separ_relog.Solve.prepare problem in
    match Separ_relog.Solve.next ~minimal session with
    | Separ_relog.Solve.Sat inst ->
        (* count only free choices: tuples beyond the exact lower bounds *)
        let size =
          List.fold_left
            (fun acc rel ->
              let lower, _ =
                Separ_relog.Bounds.get env.Separ_specs.Encode.bounds rel
              in
              acc
              + Separ_relog.Tuple_set.size
                  (Separ_relog.Tuple_set.diff
                     (Separ_relog.Instance.value inst rel)
                     lower))
            0
            (Separ_relog.Instance.relations inst)
        in
        let sc = Signatures.decode sig_ env inst in
        let mf =
          match sc.Scenario.sc_mal_filter with
          | Some f ->
              List.length f.Scenario.mf_actions
              + List.length f.Scenario.mf_categories
          | None -> 0
        in
        (size, mf)
    | Separ_relog.Solve.Unsat | Separ_relog.Solve.Unknown -> (0, 0)
  in
  let min_size, min_f = measure true in
  let raw_size, raw_f = measure false in
  Printf.printf
    "scenario size (free tuples):  minimal=%d arbitrary=%d\n" min_size raw_size;
  Printf.printf
    "synthesized filter elements:  minimal=%d arbitrary=%d\n" min_f raw_f;
  Printf.printf
    "minimal scenarios are no larger, giving the most specific policies: %b\n%!"
    (min_size <= raw_size && min_f <= raw_f)

let run_ablation_context () =
  header "Ablation: context sensitivity (k = 1 vs k = 0)";
  (* a bundle containing the classic identity-helper trap *)
  let module B = Builder in
  let trap =
    Apk.make
      ~manifest:
        (Manifest.make ~package:"trap"
           ~uses_permissions:[ Permission.read_phone_state ]
           ~components:
             [
               Component.make ~name:"TrapSrc" ~kind:Component.Activity ();
               Component.make ~name:"TrapSnk" ~kind:Component.Service
                 ~intent_filters:
                   [ Separ_android.Intent_filter.make ~actions:[ "trap.go" ] () ]
                 ();
             ]
           ())
      ~classes:
        [
          B.cls ~name:"TrapSrc"
            [
              B.meth ~name:"onCreate" ~params:1 (fun b ->
                  let v = B.get_device_id b in
                  let v' = B.call_result b ~cls:"TrapSrc" ~name:"id" [ v ] in
                  B.sput b ~field:"keep" ~src:v';
                  let clean = B.const_str b "ok" in
                  let w = B.call_result b ~cls:"TrapSrc" ~name:"id" [ clean ] in
                  let i = B.new_intent b in
                  B.set_action b i "trap.go";
                  B.put_extra b i ~key:"k" ~value:w;
                  B.start_service b i);
              B.meth ~name:"id" ~params:1 (fun b -> B.return_reg b 0);
            ];
          B.cls ~name:"TrapSnk"
            [
              B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                  let v = B.get_string_extra b 0 ~key:"k" in
                  B.write_log b ~payload:v);
            ];
        ]
  in
  let count k1 =
    List.length (Separ_baselines.Separ_tool.analyze ~k1 [ trap ])
  in
  let fp_k1 = count true and fp_k0 = count false in
  Printf.printf "leak findings on the trap app: k=1 -> %d, k=0 -> %d\n" fp_k1 fp_k0;
  Printf.printf
    "k=1 avoids the false positive that k=0 reports: %b\n%!" (fp_k1 < fp_k0)

let run_ablation_pruning () =
  header "Ablation: entry-point reachability pruning";
  let sample =
    List.map
      (fun apk -> Generator.{ apk; store = "suite"; injected = [] })
      (List.concat_map
         (fun c -> c.Separ_suites.Case.apks)
         (Separ_suites.Table1.all_cases ()))
    @ List.filteri (fun i _ -> i < 200) (Lazy.force corpus)
  in
  (* warm up allocator and caches so measurement order does not matter *)
  ignore (Extract.extract (List.hd sample).Generator.apk);
  let measure all_methods =
    let n_facts, ms =
      Trace.timed "bench.ablation_pruning"
        ~attrs:[ Trace.attr_bool "all_methods" all_methods ]
        (fun () ->
          List.fold_left
            (fun acc g ->
              let m = Extract.extract ~all_methods g.Generator.apk in
              acc
              + List.fold_left
                  (fun acc c ->
                    acc
                    + List.length c.App_model.cm_paths
                    + List.length c.App_model.cm_intents)
                  0 m.App_model.am_components)
            0 sample)
    in
    (ms /. 1000.0, n_facts)
  in
  let t_pruned, f_pruned = measure false in
  let t_all, f_all = measure true in
  Printf.printf "with pruning (SEPAR):    %.2fs, %d facts\n" t_pruned f_pruned;
  Printf.printf "without pruning (naive): %.2fs, %d facts\n" t_all f_all;
  Printf.printf
    "pruning removes dead-code facts (%d spurious) at comparable cost\n%!"
    (f_all - f_pruned)

let run_flowbench () =
  header "FlowBench: intra-component taint precision (the FlowDroid substitute)";
  print_string (Separ_suites.Flowbench.render ())

let run_ablation_incremental () =
  header "Extension: incremental re-analysis (the Marshmallow scenario)";
  let bundle_apps =
    List.filteri (fun i _ -> i < 50) (Lazy.force corpus)
    |> List.map (fun g -> g.Generator.apk)
  in
  let analysis, full_ms =
    Trace.timed "bench.incremental.full" (fun () -> analyze bundle_apps)
  in
  let t_full = full_ms /. 1000.0 in
  (* one app is updated (same package, new code) *)
  let changed = List.hd bundle_apps in
  let _, incr_ms =
    Trace.timed "bench.incremental.reanalyze" (fun () ->
        reanalyze analysis ~changed:[ changed ])
  in
  let t_incr = incr_ms /. 1000.0 in
  Printf.printf "full analysis of 50 apps:        %.2fs\n" t_full;
  Printf.printf "re-analysis after 1 app changed: %.2fs (%.1fx faster extraction+synthesis)\n%!"
    t_incr (t_full /. t_incr)

(* --- solver benchmark (BENCH_solver.json) --------------------------------------- *)

(* Pigeonhole principle: [p] pigeons in [h] holes — unsat when p > h.  A
   classic conflict-heavy instance that exercises clause learning, learnt
   minimization and database reduction. *)
let pigeonhole p h =
  let var pi hi = (pi * h) + hi + 1 in
  let some_hole = List.init p (fun pi -> List.init h (fun hi -> var pi hi)) in
  let no_share =
    List.concat_map
      (fun hi ->
        let rec pairs = function
          | [] -> []
          | a :: rest ->
              List.map (fun b -> [ -var a hi; -var b hi ]) rest @ pairs rest
        in
        pairs (List.init p Fun.id))
      (List.init h Fun.id)
  in
  some_hole @ no_share

let random_3sat rand nv nc =
  List.init nc (fun _ ->
      List.init 3 (fun _ ->
          let v = 1 + Random.State.int rand nv in
          if Random.State.bool rand then v else -v))

(* The three solver kernels behind BENCH_solver.json:
   - workload: the Table II kernel (encode + enumerate the demo bundle's
     exploit scenarios across all signatures)
   - pigeonhole: pure CDCL stress, guaranteed learnt-db churn
   - enumeration: Aluminum-style minimal-model enumeration on random
     3-SAT, exercising the shared activation literal *)
let run_solver_bench ~mode () =
  let module S = Separ_sat.Solver in
  (* The solver bench always runs with telemetry on so BENCH_solver.json
     carries its per-phase breakdown; previous state is restored on the
     way out so [--smoke] under `dune runtest` leaves no residue. *)
  let was_tracing = Trace.is_enabled () and was_metrics = Metrics.is_enabled () in
  Trace.enable ();
  Metrics.enable ();
  let (report, php_result, php_stats, scenarios, enum_stats), elapsed_ms =
    Trace.timed "bench.solver" (fun () ->
        (* Table II workload: the demo bundle through the full ASE
           pipeline. *)
        let report =
          Trace.with_span "bench.solver.workload" (fun () ->
              let models =
                List.map Extract.extract
                  [ Demo.navigation_app (); Demo.messenger_app () ]
              in
              let bundle = Bundle.of_models models in
              let limit = if mode = "smoke" then 4 else 16 in
              Ase.analyze ~limit_per_sig:limit bundle)
        in
        (* Pigeonhole stress. *)
        let php_result, php_stats =
          Trace.with_span "bench.solver.pigeonhole" (fun () ->
              let php = S.create () in
              List.iter (S.add_clause php) (pigeonhole 8 7);
              let r = S.solve php in
              (r, S.stats_record php))
        in
        (* Minimal-model enumeration stress. *)
        let scenarios, enum_stats =
          Trace.with_span "bench.solver.enumeration" (fun () ->
              let rand = Random.State.make [| 2026 |] in
              let nv = 40 in
              let enum = S.create () in
              List.iter (S.add_clause enum) (random_3sat rand nv 140);
              let scenarios =
                Separ_sat.Models.enumerate_minimal ~limit:24 enum
                  ~soft:(List.init nv (fun i -> i + 1))
              in
              (scenarios, S.stats_record enum))
        in
        (report, php_result, php_stats, scenarios, enum_stats))
  in
  let elapsed = elapsed_ms /. 1000.0 in
  let solver = Separ_report.Report.of_solver_stats in
  let json =
    Json.Obj
      [
        ("mode", Json.Str mode);
        ("provenance", Lazy.force provenance);
        ("elapsed_s", Json.Float elapsed);
        ("telemetry", Telemetry.telemetry_json ());
        ( "workload",
          Json.Obj
            [
              ("construction_ms", Json.Float report.Ase.r_construction_ms);
              ("solving_ms", Json.Float report.Ase.r_solving_ms);
              ( "vulnerabilities",
                Json.Int (List.length report.Ase.r_vulnerabilities) );
              ("solver", solver report.Ase.r_solver);
            ] );
        ( "pigeonhole_8_7",
          Json.Obj
            [
              ( "result",
                Json.Str
                  (match php_result with
                  | S.Sat -> "sat"
                  | S.Unsat -> "unsat"
                  | S.Unknown -> "unknown") );
              ("solver", solver php_stats);
            ] );
        ( "enumeration",
          Json.Obj
            [
              ("scenarios", Json.Int (List.length scenarios));
              ("solver", solver enum_stats);
            ] );
      ]
  in
  if not was_tracing then Trace.disable ();
  if not was_metrics then Metrics.disable ();
  let total f =
    f report.Ase.r_solver + f php_stats + f enum_stats
  in
  (* Kernel throughput: conflicts/s measures learning+backtracking speed,
     propagations/s the watcher hot path — the two rates the flat-arena
     kernel is tuned for, tracked in the history for trend diffing. *)
  let conflicts_per_sec =
    if elapsed > 0.0 then float_of_int (total (fun s -> s.S.s_conflicts)) /. elapsed
    else 0.0
  in
  let props_per_sec =
    if elapsed > 0.0 then
      float_of_int (total (fun s -> s.S.s_propagations)) /. elapsed
    else 0.0
  in
  let json =
    match json with
    | Json.Obj fields ->
        Json.Obj
          (fields
          @ [
              ("conflicts_per_sec", Json.Float conflicts_per_sec);
              ("propagations_per_sec", Json.Float props_per_sec);
            ])
    | j -> j
  in
  let oc = open_out "BENCH_solver.json" in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "solver kernels (%.1fs): %d conflicts, %d propagations, %d learnt-db \
     reductions (%d clauses deleted), %d literals minimized, activation \
     vars retired %d\n  throughput: %.0f conflicts/s, %.0f propagations/s \
     -> BENCH_solver.json\n%!"
    elapsed
    (total (fun s -> s.S.s_conflicts))
    (total (fun s -> s.S.s_propagations))
    (total (fun s -> s.S.s_db_reductions))
    (total (fun s -> s.S.s_learnts_deleted))
    (total (fun s -> s.S.s_lits_minimized))
    (total (fun s -> s.S.s_act_retired))
    conflicts_per_sec props_per_sec;
  record_history ~mode ~section:"solver"
    ~extra:
      [
        ("conflicts", Json.Int (total (fun s -> s.S.s_conflicts)));
        ("propagations", Json.Int (total (fun s -> s.S.s_propagations)));
        ("conflicts_per_sec", Json.Float conflicts_per_sec);
        ("propagations_per_sec", Json.Float props_per_sec);
      ]
    elapsed_ms;
  (report, php_result, php_stats, scenarios, enum_stats)

(* Fast correctness/perf gate for `dune runtest`: fails (exit 1) when the
   solver stops reducing its learnt database, stops terminating the
   stress kernels in a sane number of conflicts, or leaks activation
   variables again. *)
let run_smoke () =
  header "Smoke: solver kernels + demo-bundle synthesis (tier-1 gate)";
  let module S = Separ_sat.Solver in
  let report, php_result, php_stats, scenarios, enum_stats =
    run_solver_bench ~mode:"smoke" ()
  in
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  expect (php_result = S.Unsat) "pigeonhole 8/7 must be unsat";
  expect
    (php_stats.S.s_db_reductions > 0)
    "learnt-db reductions did not fire on the pigeonhole stress";
  expect
    (php_stats.S.s_conflicts < 500_000)
    "pigeonhole 8/7 took an absurd number of conflicts";
  expect
    (php_stats.S.s_lits_minimized > 0)
    "learnt-clause minimization removed no literals";
  expect
    (report.Ase.r_vulnerabilities <> [])
    "demo bundle produced no exploit scenarios";
  expect (scenarios <> []) "enumeration kernel produced no scenarios";
  expect
    (enum_stats.S.s_act_live = 0
    && enum_stats.S.s_act_retired <= List.length scenarios + 1)
    "activation literals leak again (one per shrink round?)";
  match !failures with
  | [] -> Printf.printf "smoke: all solver gates passed\n%!"
  | fs ->
      List.iter (fun f -> Printf.printf "smoke FAILURE: %s\n" f) fs;
      exit 1

(* A report with its performance fields zeroed, serialized: the
   comparable "what was found" view.  Runs that differ only in solver
   internals (incremental vs from-scratch, preprocessing on vs off)
   must agree on this byte-for-byte. *)
let stripped_report_string report =
  Separ_report.Report.to_string
    ~report:(Ase.strip_performance report)
    ~policies:[] ()

(* --- solver parity smoke (tier-1 gate) ------------------------------------ *)

(* The SatELite-style preprocessing pass runs at the translate -> CNF
   handoff of every from-scratch session.  This gate proves it is
   observation-free on the paper workload: a Table I slice analyzed at
   -j 1 with the pass disabled and enabled must produce byte-identical
   stripped reports (same vulnerabilities, same scenarios, same order).
   A divergence here means variable elimination touched something the
   decode/minimization layer depends on — precisely the bug class the
   frozen-variable discipline exists to prevent. *)
let run_solver_parity_smoke () =
  header "Solver parity smoke: preprocessing on/off identity (tier-1 gate)";
  let cases =
    let all = Separ_suites.Table1.all_cases () in
    List.filteri (fun i _ -> i < 6) all
  in
  let bundles =
    List.map
      (fun (c : Separ_suites.Case.t) ->
        ( c.Separ_suites.Case.name,
          Bundle.of_models
            (List.map Extract.extract c.Separ_suites.Case.apks) ))
      cases
  in
  let analyze_all () =
    List.map
      (fun (_, bundle) ->
        stripped_report_string (Ase.analyze ~jobs:1 ~incremental:false bundle))
      bundles
  in
  let with_preprocessing b f =
    Separ_relog.Solve.set_preprocessing b;
    Fun.protect ~finally:(fun () -> Separ_relog.Solve.set_preprocessing true) f
  in
  let raw = with_preprocessing false analyze_all in
  let pre = with_preprocessing true analyze_all in
  let mismatches =
    List.filteri (fun i r -> r <> List.nth pre i) raw |> List.length
  in
  Printf.printf
    "preprocessed vs raw stripped reports on %d Table I bundles: %s\n%!"
    (List.length bundles)
    (if mismatches = 0 then "byte-identical" else "DIFFER");
  if mismatches <> 0 then begin
    Printf.printf
      "solver parity smoke FAILURE: %d of %d bundles differ between \
       preprocessing on and off\n%!"
      mismatches (List.length bundles);
    exit 1
  end;
  Printf.printf "solver parity smoke: all gates passed\n%!"

(* --- telemetry smoke (tier-1 gate) ---------------------------------------- *)

(* Runs the §V running example with tracing on and fails (exit 1) when
   the observability layer regresses: empty span tree, non-monotone
   timestamps, children escaping their parent span, a missing pipeline
   phase, a SAT-span total that disagrees with the reported solving
   time, or a Chrome-trace export that no longer parses. *)
let run_telemetry_smoke () =
  header "Telemetry smoke: span tree + Chrome-trace export (tier-1 gate)";
  Trace.enable ();
  Metrics.enable ();
  Trace.reset ();
  Metrics.reset ();
  let analysis = analyze [ Demo.navigation_app (); Demo.messenger_app () ] in
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  expect
    (vulnerabilities analysis <> [])
    "running example produced no vulnerabilities";
  let roots = Trace.roots () in
  expect (roots <> []) "span tree is empty with tracing enabled";
  (* structural checks: non-negative durations, children contained in
     their parent, sibling start times monotone *)
  let rec check_span (sp : Trace.span) =
    expect (sp.Trace.sp_dur_us >= 0.0)
      (sp.Trace.sp_name ^ ": negative span duration");
    let fin = sp.Trace.sp_start_us +. sp.Trace.sp_dur_us in
    List.iter
      (fun (c : Trace.span) ->
        expect
          (c.Trace.sp_start_us +. 1e-6 >= sp.Trace.sp_start_us
          && c.Trace.sp_start_us +. c.Trace.sp_dur_us <= fin +. 1e-6)
          (c.Trace.sp_name ^ " escapes parent span " ^ sp.Trace.sp_name))
      sp.Trace.sp_children;
    ignore
      (List.fold_left
         (fun prev (c : Trace.span) ->
           expect
             (c.Trace.sp_start_us +. 1e-6 >= prev)
             (c.Trace.sp_name ^ ": sibling start times not monotone");
           c.Trace.sp_start_us)
         sp.Trace.sp_start_us sp.Trace.sp_children);
    List.iter check_span sp.Trace.sp_children
  in
  List.iter check_span roots;
  (* every pipeline phase shows up *)
  List.iter
    (fun name ->
      expect (Trace.count name > 0) ("no " ^ name ^ " spans recorded"))
    [
      "ame.extract"; "ase.analyze"; "ase.signature"; "relog.translate";
      "relog.bounds"; "relog.circuit"; "relog.tseitin"; "sat.solve";
      "policy.derive";
    ];
  (* the trace agrees with the Table II numbers the report carries *)
  let sat_ms = Trace.total_ms "sat.solve" in
  let reported = analysis.Separ.report.Ase.r_solving_ms in
  expect
    (Float.abs (sat_ms -. reported) <= (0.01 *. reported) +. 1e-6)
    (Printf.sprintf
       "sat.solve span total (%.3f ms) disagrees with reported solving \
        time (%.3f ms)"
       sat_ms reported);
  (* construction = base translations (relog.translate) + per-signature
     deltas (relog.attach); a from-scratch run simply has no attach spans *)
  let translate_ms =
    Trace.total_ms "relog.translate" +. Trace.total_ms "relog.attach"
  in
  let constructed = analysis.Separ.report.Ase.r_construction_ms in
  expect
    (Float.abs (translate_ms -. constructed) <= (0.01 *. constructed) +. 1e-6)
    "relog.translate+attach span total disagrees with reported construction \
     time";
  (* counters were bridged *)
  expect
    (Metrics.counter_value (Metrics.counter "sat.solves") > 0)
    "sat.solves counter never incremented";
  expect
    (Metrics.counter_value (Metrics.counter "ame.apps_extracted") = 2)
    "ame.apps_extracted counter is not 2";
  (* the exported Chrome trace parses and its events are well-formed *)
  let exported = Json.to_string (Telemetry.trace_json ()) in
  (match Json.parse exported with
  | exception Json.Parse_error msg ->
      expect false ("exported trace.json does not parse: " ^ msg)
  | parsed -> (
      match Option.bind (Json.member "traceEvents" parsed) Json.to_list with
      | None | Some [] -> expect false "traceEvents missing or empty"
      | Some events ->
          List.iter
            (fun ev ->
              let str k = Option.bind (Json.member k ev) Json.to_str in
              let num k = Option.bind (Json.member k ev) Json.to_float in
              expect (str "name" <> None) "trace event without name";
              expect (str "ph" = Some "X") "trace event is not an X event";
              expect
                (match num "ts" with Some ts -> ts >= 0.0 | None -> false)
                "trace event without numeric ts";
              expect
                (match num "dur" with Some d -> d >= 0.0 | None -> false)
                "trace event without numeric dur")
            events));
  Trace.disable ();
  Metrics.disable ();
  match !failures with
  | [] ->
      Printf.printf "telemetry smoke: %d spans, all gates passed\n%!"
        (Trace.fold_spans (fun acc _ -> acc + 1) 0)
  | fs ->
      List.iter (fun f -> Printf.printf "telemetry FAILURE: %s\n" f) fs;
      exit 1

(* --- parallel synthesis (BENCH_parallel.json) ------------------------------ *)

(* Comparable view of an analysis across [-j N]: kind + description of
   every scenario, in report order. *)
let scenario_keys (report : Ase.report) =
  List.map
    (fun v -> (v.Ase.v_kind, v.Ase.v_scenario.Scenario.sc_description))
    report.Ase.r_vulnerabilities

module Pool = Separ_exec.Pool

(* What the parallel bench measured, for the smoke gate. *)
type parallel_bench = {
  pb_identical : bool;
  pb_degradations : Ase.degraded list;
  pb_cores : int;
  pb_speedup_at_2 : float;
  pb_pool : (int * Pool.run_stats) list; (* per width, the pool's own view *)
}

(* The Table I workload (one bundle per DroidBench/ICC-Bench case) run
   through ASE at increasing worker-pool widths, sharded across
   *bundles* first (Ase.analyze_many): one persistent fork set serves
   all the cases per width, with bundles batched over the wire.  Checks
   that every width produces the identical scenario sets, that forks
   scale with the pool width (not the task count), and measures the
   1-vs-N wall-clock speedup -> BENCH_parallel.json. *)
let run_parallel_bench ~mode () =
  header
    "Parallel synthesis: ASE at -j 1/2/4, bundle-axis sharding (Table I \
     workload)";
  let cases =
    let all = Separ_suites.Table1.all_cases () in
    if mode = "smoke" then List.filteri (fun i _ -> i < 6) all else all
  in
  let bundles =
    List.map
      (fun (c : Separ_suites.Case.t) ->
        ( c.Separ_suites.Case.name,
          Bundle.of_models
            (List.map Extract.extract c.Separ_suites.Case.apks) ))
      cases
  in
  let widths = [ 1; 2; 4 ] in
  let runs =
    List.map
      (fun jobs ->
        let reports, ms =
          Trace.timed "bench.parallel"
            ~attrs:[ Trace.attr_int "jobs" jobs ]
            (fun () ->
              Ase.analyze_many ~jobs ~shard_bundles:true
                (List.map snd bundles))
        in
        let keys =
          List.map2
            (fun (name, _) report ->
              (name, scenario_keys report, report.Ase.r_degraded))
            bundles reports
        in
        (jobs, keys, ms, Pool.last_run_stats ()))
      widths
  in
  let _, base_keys, base_ms, _ = List.hd runs in
  let identical =
    List.for_all (fun (_, keys, _, _) -> keys = base_keys) (List.tl runs)
  in
  let degradations =
    List.concat_map (fun (_, keys, _, _) ->
        List.concat_map (fun (_, _, d) -> d) keys)
      runs
  in
  let speedup_at jobs =
    match List.find_opt (fun (j, _, _, _) -> j = jobs) runs with
    | Some (_, _, ms, _) when ms > 0.0 -> base_ms /. ms
    | _ -> 0.0
  in
  (* On a single-core host every extra worker can only time-slice, so
     the recorded speedup is necessarily <= 1 there; the core count is
     part of the record so readers can interpret the ratios. *)
  let cores = Domain.recommended_domain_count () in
  let json =
    Json.Obj
      [
        ("mode", Json.Str mode);
        ("provenance", Lazy.force provenance);
        ("cpu_cores", Json.Int cores);
        ("cases", Json.Int (List.length bundles));
        ( "runs",
          Json.List
            (List.map
               (fun (jobs, keys, ms, (pool : Pool.run_stats)) ->
                 Json.Obj
                   [
                     ("jobs", Json.Int jobs);
                     ("wall_ms", Json.Float ms);
                     ( "scenarios",
                       Json.Int
                         (List.fold_left
                            (fun acc (_, ks, _) -> acc + List.length ks)
                            0 keys) );
                     ("forks", Json.Int pool.Pool.rs_forks);
                     ("respawns", Json.Int pool.Pool.rs_respawns);
                     ("batches", Json.Int pool.Pool.rs_batches);
                     ("batch_size", Json.Int pool.Pool.rs_batch);
                   ])
               runs) );
        ("identical_scenario_sets", Json.Bool identical);
        ("degraded_signatures", Json.Int (List.length degradations));
        ("speedup_at_2", Json.Float (speedup_at 2));
        ("speedup_at_4", Json.Float (speedup_at 4));
      ]
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  List.iter
    (fun (jobs, _, ms, (pool : Pool.run_stats)) ->
      Printf.printf
        "-j %d: %7.1f ms (speedup %.2fx, %d forks, %d batches of <= %d)\n"
        jobs ms
        (if ms > 0.0 then base_ms /. ms else 0.0)
        pool.Pool.rs_forks pool.Pool.rs_batches pool.Pool.rs_batch)
    runs;
  Printf.printf "scenario sets identical across -j: %b -> BENCH_parallel.json\n"
    identical;
  if cores = 1 then
    Printf.printf
      "(single-core host: workers time-slice one CPU, speedup <= 1 expected)\n";
  Printf.printf "%!";
  (* The trajectory headline is the -j 1 wall time: speedups divide it
     away, so a sequential regression would otherwise hide. *)
  record_history ~mode ~section:"parallel"
    ~extra:
      [
        ("cpu_cores", Json.Int cores);
        ("speedup_at_2", Json.Float (speedup_at 2));
        ("speedup_at_4", Json.Float (speedup_at 4));
      ]
    base_ms;
  {
    pb_identical = identical;
    pb_degradations = degradations;
    pb_cores = cores;
    pb_speedup_at_2 = speedup_at 2;
    pb_pool =
      List.map (fun (jobs, _, _, pool) -> (jobs, pool)) runs;
  }

(* Tier-1 gate for `dune runtest`: a small Table I slice plus the demo
   bundle at -j 1 and -j 2 must produce byte-identical scenario sets, a
   zero conflict budget must degrade every searching signature
   (terminating, no scenarios) rather than hang or crash, forks must
   scale with the pool width (not the task count), and — on hosts with
   at least two cores — -j 2 must not be slower than -j 1.  On a
   single-core host the speedup gate prints an explicit SKIPPED line
   instead of silently passing. *)
let run_parallel_smoke () =
  header "Parallel smoke: -j determinism + budget degradation (tier-1 gate)";
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  let pb = run_parallel_bench ~mode:"smoke" () in
  expect pb.pb_identical "scenario sets differ across -j widths";
  expect (pb.pb_degradations = [])
    "un-budgeted parallel run reported degraded signatures";
  (* Forks must track the pool, not the workload: at every width the
     persistent pool forks min(jobs, batches) children, reuses them
     across batches, and never needs a respawn in a crash-free run. *)
  List.iter
    (fun (jobs, (pool : Pool.run_stats)) ->
      if jobs > 1 then begin
        expect
          (pool.Pool.rs_forks = min jobs pool.Pool.rs_batches)
          (Printf.sprintf
             "-j %d forked %d workers for %d batches (want min(jobs, \
              batches) = %d)"
             jobs pool.Pool.rs_forks pool.Pool.rs_batches
             (min jobs pool.Pool.rs_batches));
        expect
          (pool.Pool.rs_respawns = 0)
          (Printf.sprintf "-j %d respawned %d workers in a crash-free run"
             jobs pool.Pool.rs_respawns)
      end)
    pb.pb_pool;
  (* The regression this gate exists to catch: parallel slower than
     sequential.  Only meaningful when the host can actually run two
     workers at once, so single-core hosts skip it — loudly. *)
  if pb.pb_cores >= 2 then
    expect
      (pb.pb_speedup_at_2 >= 1.0)
      (Printf.sprintf
         "-j 2 is slower than -j 1 (speedup %.2fx) on a %d-core host"
         pb.pb_speedup_at_2 pb.pb_cores)
  else
    Printf.printf
      "parallel smoke: speedup gate SKIPPED (single-core host, cpu_cores=%d)\n"
      pb.pb_cores;
  let demo_bundle =
    Bundle.of_models
      (List.map Extract.extract
         [ Demo.navigation_app (); Demo.messenger_app () ])
  in
  let seq = Ase.analyze ~jobs:1 demo_bundle in
  let par = Ase.analyze ~jobs:2 demo_bundle in
  expect (seq.Ase.r_vulnerabilities <> [])
    "demo bundle produced no scenarios";
  expect
    (scenario_keys seq = scenario_keys par)
    "demo bundle scenario sets differ between -j 1 and -j 2";
  let budget =
    { Separ_sat.Solver.b_max_conflicts = Some 0; b_max_time_ms = None }
  in
  List.iter
    (fun jobs ->
      let starved = Ase.analyze ~jobs ~budget demo_bundle in
      expect
        (starved.Ase.r_vulnerabilities = [])
        "zero-budget analysis still produced scenarios";
      expect
        (starved.Ase.r_degraded <> [])
        "zero-budget analysis recorded no degraded signatures";
      List.iter
        (fun (d : Ase.degraded) ->
          expect
            (d.Ase.d_reason = "budget_exhausted")
            ("unexpected degradation reason: " ^ d.Ase.d_reason))
        starved.Ase.r_degraded)
    [ 1; 2 ];
  match !failures with
  | [] -> Printf.printf "parallel smoke: all gates passed\n%!"
  | fs ->
      List.iter (fun f -> Printf.printf "parallel smoke FAILURE: %s\n" f) fs;
      exit 1

(* --- incremental ASE (BENCH_incremental.json) ------------------------------ *)

(* The Table I workload through ASE twice per pool width: once with the
   shared-base incremental path, once from scratch.  Gates that both
   produce byte-identical stripped reports, and that the incremental
   path's per-signature translation deltas (vars + clauses + gates
   added after the first signature) are strictly smaller than the
   from-scratch cost of re-encoding the bundle for every signature.
   Measurements -> BENCH_incremental.json. *)
let run_incremental_bench ~mode () =
  header
    "Incremental ASE: shared base encoding vs from-scratch (Table I workload)";
  let cases =
    let all = Separ_suites.Table1.all_cases () in
    if mode = "smoke" then List.filteri (fun i _ -> i < 6) all else all
  in
  let bundles =
    List.map
      (fun (c : Separ_suites.Case.t) ->
        ( c.Separ_suites.Case.name,
          Bundle.of_models
            (List.map Extract.extract c.Separ_suites.Case.apks) ))
      cases
  in
  let widths = [ 1; 2; 4 ] in
  let run ~incremental jobs =
    Trace.timed "bench.incremental_ase"
      ~attrs:
        [ Trace.attr_int "jobs" jobs; Trace.attr_bool "incremental" incremental ]
      (fun () ->
        List.map (fun (_, bundle) -> Ase.analyze ~jobs ~incremental bundle)
          bundles)
  in
  let runs =
    List.map
      (fun jobs ->
        let inc, inc_ms = run ~incremental:true jobs in
        let scr, scr_ms = run ~incremental:false jobs in
        (jobs, inc, inc_ms, scr, scr_ms))
      widths
  in
  let identical =
    List.for_all
      (fun (_, inc, _, scr, _) ->
        List.for_all2
          (fun a b -> stripped_report_string a = stripped_report_string b)
          inc scr)
      runs
  in
  (* Sharing accounting over the -j 1 run.  The first signature on a
     fresh solver pays the full bundle translation either way; the gain
     the incremental path claims is on every signature after it, so the
     gate compares the summed encoding work (vars + clauses + gates
     added) of signatures 2..N only. *)
  let delta_work (d : Ase.sig_delta) =
    d.Ase.sd_vars + d.Ase.sd_clauses + d.Ase.sd_gates
  in
  let tail_work report =
    match report.Ase.r_sig_deltas with
    | [] | [ _ ] -> 0
    | _ :: rest -> List.fold_left (fun acc d -> acc + delta_work d) 0 rest
  in
  let sum f reports = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let sum_delta f report =
    List.fold_left (fun acc d -> acc + f d) 0 report.Ase.r_sig_deltas
  in
  let _, inc1, _, scr1, _ = List.hd runs in
  let inc_tail = sum tail_work inc1 in
  let scr_tail = sum tail_work scr1 in
  let cache_hits = sum (sum_delta (fun d -> d.Ase.sd_cache_hits)) inc1 in
  let reused_clauses =
    sum (sum_delta (fun d -> d.Ase.sd_reused_clauses)) inc1
  in
  (* Per-signature view at -j 1, summed across bundles: the JSON record
     of where the saved translation work lives. *)
  let kinds =
    match inc1 with
    | r :: _ -> List.map (fun d -> d.Ase.sd_kind) r.Ase.r_sig_deltas
    | [] -> []
  in
  let per_signature =
    List.mapi
      (fun i kind ->
        let at reports f =
          sum
            (fun r ->
              match List.nth_opt r.Ase.r_sig_deltas i with
              | Some d -> f d
              | None -> 0)
            reports
        in
        Json.Obj
          [
            ("kind", Json.Str kind);
            ("incremental_work", Json.Int (at inc1 delta_work));
            ("scratch_work", Json.Int (at scr1 delta_work));
            ( "translate_cache_hits",
              Json.Int (at inc1 (fun d -> d.Ase.sd_cache_hits)) );
            ( "reused_clauses",
              Json.Int (at inc1 (fun d -> d.Ase.sd_reused_clauses)) );
            ( "reused_learnts",
              Json.Int (at inc1 (fun d -> d.Ase.sd_reused_learnts)) );
          ])
      kinds
  in
  let cores = Domain.recommended_domain_count () in
  let json =
    Json.Obj
      [
        ("mode", Json.Str mode);
        ("provenance", Lazy.force provenance);
        ("cpu_cores", Json.Int cores);
        ("cases", Json.Int (List.length bundles));
        ( "runs",
          Json.List
            (List.map
               (fun (jobs, _, inc_ms, _, scr_ms) ->
                 Json.Obj
                   [
                     ("jobs", Json.Int jobs);
                     ("incremental_wall_ms", Json.Float inc_ms);
                     ("scratch_wall_ms", Json.Float scr_ms);
                     ( "speedup",
                       Json.Float
                         (if inc_ms > 0.0 then scr_ms /. inc_ms else 0.0) );
                   ])
               runs) );
        ("identical_stripped_reports", Json.Bool identical);
        ("tail_signature_work_incremental", Json.Int inc_tail);
        ("tail_signature_work_scratch", Json.Int scr_tail);
        ("translate_cache_hits", Json.Int cache_hits);
        ("reused_clauses", Json.Int reused_clauses);
        ("per_signature", Json.List per_signature);
      ]
  in
  let oc = open_out "BENCH_incremental.json" in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  List.iter
    (fun (jobs, _, inc_ms, _, scr_ms) ->
      Printf.printf
        "-j %d: incremental %7.1f ms, from-scratch %7.1f ms (%.2fx)\n" jobs
        inc_ms scr_ms
        (if inc_ms > 0.0 then scr_ms /. inc_ms else 0.0))
    runs;
  Printf.printf
    "signatures 2..N encoding work: %d incremental vs %d from-scratch\n"
    inc_tail scr_tail;
  Printf.printf
    "translate-cache hits: %d, reused clauses: %d\n" cache_hits reused_clauses;
  Printf.printf
    "stripped reports identical across paths and -j: %b -> \
     BENCH_incremental.json\n%!"
    identical;
  (match runs with
  | (_, _, inc1_ms, _, scr1_ms) :: _ ->
      record_history ~mode ~section:"incremental"
        ~extra:[ ("scratch_wall_ms", Json.Float scr1_ms) ]
        inc1_ms
  | [] -> ());
  (identical, inc_tail, scr_tail, cache_hits, reused_clauses)

(* Tier-1 gate for `dune runtest`: on a Table I slice the incremental
   and from-scratch paths must produce byte-identical stripped reports
   at -j 1/2/4, and the incremental path must demonstrably share work
   (strictly less signature-2..N encoding, non-zero cache hits and
   reused clauses). *)
let run_incremental_smoke () =
  header "Incremental smoke: shared-base identity + sharing (tier-1 gate)";
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  let identical, inc_tail, scr_tail, cache_hits, reused_clauses =
    run_incremental_bench ~mode:"smoke" ()
  in
  expect identical
    "incremental and from-scratch stripped reports differ";
  expect
    (inc_tail < scr_tail)
    (Printf.sprintf
       "incremental tail encoding work not strictly lower (%d >= %d)"
       inc_tail scr_tail);
  expect (cache_hits > 0) "incremental run recorded no translate-cache hits";
  expect (reused_clauses > 0) "incremental run reused no clauses";
  match !failures with
  | [] -> Printf.printf "incremental smoke: all gates passed\n%!"
  | fs ->
      List.iter (fun f -> Printf.printf "incremental smoke FAILURE: %s\n" f) fs;
      exit 1

(* --- persistent cache (BENCH_cache.json) ----------------------------------- *)

(* A probe app whose two variants differ only in one sensitive
   source-to-sink path inside its (filterless) service — the "one app
   changed" edit of the cross-run scenario.  The edit is invisible to
   path-blind signatures (intent_hijack keeps its cached verdict) but
   must invalidate every path-sensitive one. *)
let cache_probe_app ~extra_path () =
  let module B = Builder in
  let body =
    B.meth ~name:"onStartCommand" ~params:1 (fun b ->
        if extra_path then
          let v = B.get_location b in
          B.write_log b ~payload:v)
  in
  Apk.make
    ~manifest:
      (Manifest.make ~package:"com.cache.probe"
         ~uses_permissions:[ Permission.access_fine_location ]
         ~components:[ Component.make ~name:"Probe" ~kind:Component.Service () ]
         ())
    ~classes:[ B.cls ~name:"Probe" [ body ] ]

type cache_bench = {
  cb_warm_identical : bool;
  cb_changed_identical : bool;
  cb_warm_extractions : int;
  cb_warm_solves : int;
  cb_warm_hits : int;
  cb_changed_extractions : int;
  cb_changed_hits : int;
  cb_changed_misses : int;
  cb_cold_ms : float;
  cb_warm_ms : float;
  cb_changed_ms : float;
}

(* The Table I workload (each bundle augmented with the probe app)
   analyzed three times through one on-disk cache: cold (empty cache),
   warm (nothing changed), and with the probe's path edited (one app
   changed).  A from-scratch pass over the edited workload is the
   correctness reference.  Measurements -> BENCH_cache.json. *)
let run_cache_bench ~mode () =
  header "Persistent cache: cold vs warm vs one-app-changed (Table I workload)";
  let cases =
    let all = Separ_suites.Table1.all_cases () in
    if mode = "smoke" then List.filteri (fun i _ -> i < 6) all else all
  in
  let workload ~extra_path =
    List.map
      (fun (c : Separ_suites.Case.t) ->
        c.Separ_suites.Case.apks @ [ cache_probe_app ~extra_path () ])
      cases
  in
  let dir = Filename.temp_file "separ_cache_bench" "" in
  Sys.remove dir;
  Metrics.enable ();
  (* One pass over every bundle through one cache handle: the stripped
     reports, the wall time, and what actually ran. *)
  let pass ?cache apk_lists =
    Metrics.reset ();
    let reports, wall_ms =
      Trace.timed "bench.cache_pass" (fun () ->
          List.map
            (fun apks ->
              let bundle =
                Bundle.of_models
                  (List.map (Extract.extract_cached ?cache) apks)
              in
              Ase.analyze ?cache bundle)
            apk_lists)
    in
    let count name = Metrics.counter_value (Metrics.counter name) in
    ( List.map stripped_report_string reports,
      wall_ms,
      count "ame.apps_extracted",
      count "sat.solves" )
  in
  let stat cache name =
    match List.assoc_opt name (Cache.stats cache) with Some n -> n | None -> 0
  in
  let cold_cache = Cache.open_ ~dir () in
  let cold_reports, cold_ms, cold_extracted, cold_solves =
    pass ~cache:cold_cache (workload ~extra_path:false)
  in
  let warm_cache = Cache.open_ ~dir () in
  let warm_reports, warm_ms, warm_extracted, warm_solves =
    pass ~cache:warm_cache (workload ~extra_path:false)
  in
  let changed_cache = Cache.open_ ~dir () in
  let changed_reports, changed_ms, changed_extracted, changed_solves =
    pass ~cache:changed_cache (workload ~extra_path:true)
  in
  (* reference: the edited workload from scratch, no cache *)
  let scratch_reports, _, _, _ = pass (workload ~extra_path:true) in
  let result =
    {
      cb_warm_identical = cold_reports = warm_reports;
      cb_changed_identical = changed_reports = scratch_reports;
      cb_warm_extractions = warm_extracted;
      cb_warm_solves = warm_solves;
      cb_warm_hits = stat warm_cache "ase.hits";
      cb_changed_extractions = changed_extracted;
      cb_changed_hits = stat changed_cache "ase.hits";
      cb_changed_misses = stat changed_cache "ase.misses";
      cb_cold_ms = cold_ms;
      cb_warm_ms = warm_ms;
      cb_changed_ms = changed_ms;
    }
  in
  let phase_json ms extracted solves cache =
    Json.Obj
      ([
         ("wall_ms", Json.Float ms);
         ("ame_extractions", Json.Int extracted);
         ("sat_solves", Json.Int solves);
       ]
      @ List.map (fun (k, v) -> ("cache." ^ k, Json.Int v)) (Cache.stats cache))
  in
  let speedup over = if over > 0.0 then cold_ms /. over else 0.0 in
  let json =
    Json.Obj
      [
        ("mode", Json.Str mode);
        ("provenance", Lazy.force provenance);
        ("cases", Json.Int (List.length cases));
        ("signatures", Json.Int (List.length (Signatures.all ())));
        ("cold", phase_json cold_ms cold_extracted cold_solves cold_cache);
        ("warm", phase_json warm_ms warm_extracted warm_solves warm_cache);
        ( "one_app_changed",
          phase_json changed_ms changed_extracted changed_solves changed_cache
        );
        ("warm_identical_stripped_reports", Json.Bool result.cb_warm_identical);
        ( "changed_identical_stripped_reports",
          Json.Bool result.cb_changed_identical );
        ("warm_speedup", Json.Float (speedup warm_ms));
        ("changed_speedup", Json.Float (speedup changed_ms));
      ]
  in
  let oc = open_out "BENCH_cache.json" in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "cold:    %7.1f ms  (%d extractions, %d solves)\n\
     warm:    %7.1f ms  (%d extractions, %d solves, %.1fx)\n\
     changed: %7.1f ms  (%d extractions, %d solves, %.1fx)\n"
    cold_ms cold_extracted cold_solves warm_ms warm_extracted warm_solves
    (speedup warm_ms) changed_ms changed_extracted changed_solves
    (speedup changed_ms);
  Printf.printf
    "changed run: %d ASE verdicts from cache, %d re-solved\n"
    result.cb_changed_hits result.cb_changed_misses;
  Printf.printf
    "stripped reports identical (warm %b, changed %b) -> BENCH_cache.json\n%!"
    result.cb_warm_identical result.cb_changed_identical;
  record_history ~mode ~section:"cache"
    ~extra:
      [
        ("warm_ms", Json.Float warm_ms); ("changed_ms", Json.Float changed_ms);
      ]
    cold_ms;
  result

(* Tier-1 gate for `dune runtest`: a warm re-run must do zero AME
   extractions and zero SAT solves yet reproduce the cold stripped
   reports byte-for-byte; editing one app must re-extract exactly that
   app and re-solve only the signatures whose delta footprint sees the
   edit (some hits AND some misses), again with a byte-identical
   from-scratch reference. *)
let run_cache_smoke () =
  header "Cache smoke: warm identity + one-app-changed selectivity (tier-1 gate)";
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  let r = run_cache_bench ~mode:"smoke" () in
  expect r.cb_warm_identical "warm stripped reports differ from cold";
  expect
    (r.cb_warm_extractions = 0)
    (Printf.sprintf "warm run extracted %d apps (expected 0)"
       r.cb_warm_extractions);
  expect
    (r.cb_warm_solves = 0)
    (Printf.sprintf "warm run ran %d SAT solves (expected 0)" r.cb_warm_solves);
  expect (r.cb_warm_hits > 0) "warm run recorded no ASE cache hits";
  expect
    (r.cb_changed_extractions = 1)
    (Printf.sprintf "one-app-changed run extracted %d apps (expected 1)"
       r.cb_changed_extractions);
  expect
    (r.cb_changed_hits > 0)
    "one-app-changed run kept no cached verdicts (expected path-blind hits)";
  expect
    (r.cb_changed_misses > 0)
    "one-app-changed run re-solved nothing (expected path-sensitive misses)";
  expect r.cb_changed_identical
    "one-app-changed stripped reports differ from the from-scratch reference";
  expect
    (r.cb_warm_ms < r.cb_cold_ms)
    (Printf.sprintf "warm run not faster than cold (%.1f >= %.1f ms)"
       r.cb_warm_ms r.cb_cold_ms);
  expect
    (r.cb_changed_ms < r.cb_cold_ms)
    (Printf.sprintf "one-app-changed run not faster than cold (%.1f >= %.1f ms)"
       r.cb_changed_ms r.cb_cold_ms);
  match !failures with
  | [] -> Printf.printf "cache smoke: all gates passed\n%!"
  | fs ->
      List.iter (fun f -> Printf.printf "cache smoke FAILURE: %s\n" f) fs;
      exit 1

(* --- serve: the app-store daemon ------------------------------------------- *)

type serve_bench_result = {
  sb_store : int;
  sb_updates : int;
  sb_selected : int;  (* bundles dispatched across the update stream *)
  sb_dispatch_full : int;  (* what per-update full repair would dispatch *)
  sb_selective : bool;  (* every update analyzed < store-size bundles *)
  sb_identical : bool;  (* selective stripped reports = full repair *)
  sb_warm_identical : bool;  (* warm replay through the cache agrees *)
  sb_index_consistent : bool;  (* hot-updated index = rebuild *)
  sb_cold_ms : float;
  sb_update_ms : float;
  sb_repair_ms : float;
  sb_warm_ms : float;
  sb_p50_ms : float;
  sb_p99_ms : float;
}

(* A synthetic store of N generated apps streamed into the daemon, then
   K "updates": the same packages regenerated under a different seed, so
   each upload genuinely changes the app's body (and usually its
   footprint).  Selective re-analysis must reproduce a brute-force full
   repair byte for byte (stripped reports) while dispatching strictly
   fewer scope bundles; a second daemon replaying the final store
   through the same cache directory measures the warm path. *)
let run_serve_bench ~mode () =
  header "App-store daemon: footprint-indexed selective re-analysis";
  let n, k = if mode = "smoke" then (8, 2) else (24, 6) in
  let profile =
    {
      Generator.store = "serve";
      count = n;
      size_lo = 40;
      size_hi = 160;
      rate_hijack = 0.2;
      rate_launch = 0.2;
      rate_privesc = 0.1;
      rate_leak = 0.2;
    }
  in
  let apks gen = List.map (fun g -> g.Generator.apk) gen in
  let initial = apks (Generator.generate ~profiles:[ profile ] ()) in
  let regenerated = apks (Generator.generate ~seed:7 ~profiles:[ profile ] ()) in
  let updates =
    List.filteri (fun i _ -> i mod (max 1 (n / k)) = 0) regenerated
    |> List.filteri (fun i _ -> i < k)
  in
  let dir = Filename.temp_file "separ_serve_bench" "" in
  Sys.remove dir;
  let stripped serve =
    List.map
      (fun (pkg, r) -> (pkg, stripped_report_string r))
      (Serve.reports serve)
  in
  let cache = Cache.open_ ~dir () in
  let serve = Serve.create ~cache () in
  List.iter (fun apk -> Serve.submit serve (Serve.Upload apk)) initial;
  let cold_verdicts, cold_ms =
    Trace.timed "bench.serve_cold" (fun () -> Serve.drain serve)
  in
  List.iter (fun apk -> Serve.submit serve (Serve.Upload apk)) updates;
  let update_verdicts, update_ms =
    Trace.timed "bench.serve_updates" (fun () -> Serve.drain serve)
  in
  let selective = stripped serve in
  let (_ : int), repair_ms =
    Trace.timed "bench.serve_repair" (fun () -> Serve.full_repair serve)
  in
  let reference = stripped serve in
  (* warm replay: a fresh daemon ingests the final store through the
     same cache directory *)
  let final_store =
    List.map
      (fun apk ->
        match
          List.find_opt (fun u -> Apk.package u = Apk.package apk) updates
        with
        | Some updated -> updated
        | None -> apk)
      initial
  in
  let serve2 = Serve.create ~cache:(Cache.open_ ~dir ()) () in
  List.iter (fun apk -> Serve.submit serve2 (Serve.Upload apk)) final_store;
  let (_ : Serve.verdict list), warm_ms =
    Trace.timed "bench.serve_warm" (fun () -> Serve.drain serve2)
  in
  let latencies =
    List.map
      (fun v -> v.Serve.vd_latency_ms)
      (cold_verdicts @ update_verdicts)
  in
  let result =
    {
      sb_store = n;
      sb_updates = List.length updates;
      sb_selected =
        List.fold_left
          (fun acc v -> acc + v.Serve.vd_analyzed)
          0 update_verdicts;
      sb_dispatch_full = List.length updates * n;
      sb_selective =
        update_verdicts <> []
        && List.for_all
             (fun v -> v.Serve.vd_analyzed < v.Serve.vd_store_size)
             update_verdicts;
      sb_identical = selective = reference;
      sb_warm_identical = stripped serve2 = reference;
      sb_index_consistent =
        Footprint.equal (Serve.index serve) (Serve.rebuilt_index serve)
        && Footprint.equal (Serve.index serve2) (Serve.rebuilt_index serve2);
      sb_cold_ms = cold_ms;
      sb_update_ms = update_ms;
      sb_repair_ms = repair_ms;
      sb_warm_ms = warm_ms;
      sb_p50_ms = percentile 0.50 latencies;
      sb_p99_ms = percentile 0.99 latencies;
    }
  in
  let apps_per_sec =
    if cold_ms > 0.0 then float_of_int n /. (cold_ms /. 1000.0) else 0.0
  in
  let json =
    Json.Obj
      [
        ("mode", Json.Str mode);
        ("provenance", Lazy.force provenance);
        ("store_apps", Json.Int result.sb_store);
        ("updates", Json.Int result.sb_updates);
        ("bundles_selected", Json.Int result.sb_selected);
        ("bundles_full_repair", Json.Int result.sb_dispatch_full);
        ("selective", Json.Bool result.sb_selective);
        ("identical_stripped_reports", Json.Bool result.sb_identical);
        ("warm_identical_stripped_reports", Json.Bool result.sb_warm_identical);
        ("index_consistent", Json.Bool result.sb_index_consistent);
        ("cold_ms", Json.Float cold_ms);
        ("update_stream_ms", Json.Float update_ms);
        ("full_repair_ms", Json.Float repair_ms);
        ("warm_ms", Json.Float warm_ms);
        ("upload_to_verdict_p50_ms", Json.Float result.sb_p50_ms);
        ("upload_to_verdict_p99_ms", Json.Float result.sb_p99_ms);
        ("cold_apps_per_sec", Json.Float apps_per_sec);
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "store:   %d apps ingested cold in %.1f ms (%.1f apps/s)\n\
     updates: %d uploads re-analyzed %d bundles (full repair: %d) in %.1f ms\n\
     repair:  %.1f ms   warm replay: %.1f ms\n\
     latency: p50 %.1f ms  p99 %.1f ms (upload -> verdict)\n"
    n cold_ms apps_per_sec result.sb_updates result.sb_selected
    result.sb_dispatch_full update_ms repair_ms warm_ms result.sb_p50_ms
    result.sb_p99_ms;
  Printf.printf
    "stripped reports identical (selective %b, warm %b), index consistent %b \
     -> BENCH_serve.json\n%!"
    result.sb_identical result.sb_warm_identical result.sb_index_consistent;
  record_history ~mode ~section:"serve"
    ~extra:
      [
        ("update_stream_ms", Json.Float update_ms);
        ("full_repair_ms", Json.Float repair_ms);
        ("p99_ms", Json.Float result.sb_p99_ms);
      ]
    cold_ms;
  result

(* Tier-1 gate for `dune runtest`: on a tiny store, each upload's
   selective re-analysis must dispatch strictly fewer bundles than the
   store holds yet leave every stripped report byte-identical to a
   brute-force full repair, and the hot-updated footprint index must
   equal a from-scratch rebuild. *)
let run_serve_smoke () =
  header "Serve smoke: selective re-analysis identity (tier-1 gate)";
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  let r = run_serve_bench ~mode:"smoke" () in
  expect r.sb_identical
    "selective stripped reports differ from the full-repair reference";
  expect r.sb_selective
    "an update re-analyzed the whole store (expected a strict subset)";
  expect
    (r.sb_selected < r.sb_dispatch_full)
    (Printf.sprintf
       "update stream dispatched %d bundles, full repair would dispatch %d"
       r.sb_selected r.sb_dispatch_full);
  expect r.sb_warm_identical
    "warm replay through the cache produced different stripped reports";
  expect r.sb_index_consistent
    "hot-updated footprint index differs from a from-scratch rebuild";
  match !failures with
  | [] -> Printf.printf "serve smoke: all gates passed\n%!"
  | fs ->
      List.iter (fun f -> Printf.printf "serve smoke FAILURE: %s\n" f) fs;
      exit 1

(* --- observability smoke (tier-1 gate) ------------------------------------- *)

(* Runs the demo bundle at -j 2 with the whole observability stack on —
   NDJSON log sink at debug level, GC profiling, metrics — and fails
   (exit 1) when the log stream stops being valid NDJSON, worker events
   stop arriving pid-tagged through the pool, per-pid timestamps go
   non-monotone (replay order broke), the rate limiter stops counting
   drops, the OpenMetrics export stops validating, GC deltas vanish
   from the translate/solve spans, or the span ring stops bounding
   retention.  All observability state is restored on the way out. *)
let run_obs_smoke () =
  header
    "Observability smoke: NDJSON log + OpenMetrics + GC profile (tier-1 gate)";
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  let log_path = Filename.temp_file "separ_obs_smoke" ".ndjson" in
  Trace.enable ();
  Metrics.enable ();
  Trace.set_profile_gc true;
  Trace.reset ();
  Metrics.reset ();
  Log.to_file log_path;
  Log.set_level Log.Debug;
  Log.reset ();
  let models =
    List.map Extract.extract [ Demo.navigation_app (); Demo.messenger_app () ]
  in
  let report = Ase.analyze ~jobs:2 (Bundle.of_models models) in
  expect
    (report.Ase.r_vulnerabilities <> [])
    "demo bundle produced no scenarios";
  (* The rate limiter: flood one event name past the per-window limit
     and check the overflow was counted, not written. *)
  for i = 1 to Log.default_rate_limit + 50 do
    Log.debug "obs.smoke_flood" ~fields:[ ("i", Trace.Int i) ]
  done;
  let _, suppressed = Log.stats () in
  expect (suppressed >= 50)
    (Printf.sprintf "rate limiter suppressed %d flood events (expected >= 50)"
       suppressed);
  Log.close ();
  (* Every line of the sink must be one well-formed envelope; worker
     events must be there under their own pids, in emission order. *)
  let lines =
    let ic = open_in log_path in
    let acc = ref [] in
    (try
       while true do
         let l = String.trim (input_line ic) in
         if l <> "" then acc := l :: !acc
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !acc
  in
  expect (lines <> []) "log sink captured no events";
  let parent = Unix.getpid () in
  let worker_pids : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun line ->
      match Json.parse line with
      | exception Json.Parse_error msg ->
          expect false
            (Printf.sprintf "log line is not valid JSON (%s): %s" msg line)
      | j -> (
          let ts = Option.bind (Json.member "ts_us" j) Json.to_float in
          let level = Option.bind (Json.member "level" j) Json.to_str in
          let event = Option.bind (Json.member "event" j) Json.to_str in
          let pid = Option.bind (Json.member "pid" j) Json.to_float in
          expect (ts <> None) "log event without numeric ts_us";
          expect
            (match level with
            | Some ("debug" | "info" | "warn" | "error") -> true
            | _ -> false)
            "log event with missing or unknown level";
          expect (event <> None) "log event without event name";
          match (pid, ts) with
          | Some p, Some t ->
              let p = int_of_float p in
              if p <> parent && event = Some "ase.signature" then
                Hashtbl.replace worker_pids p ();
              let prev =
                Option.value ~default:neg_infinity (Hashtbl.find_opt last_ts p)
              in
              expect (t >= prev)
                (Printf.sprintf "per-pid timestamps not monotone (pid %d)" p);
              Hashtbl.replace last_ts p t
          | _ -> expect false "log event without pid"))
    lines;
  expect
    (Hashtbl.length worker_pids >= 1)
    "no pid-tagged worker ase.signature events reached the parent sink";
  (* GC profiling: the translate and solve phases allocate, so their
     spans must carry non-zero minor-heap deltas, and the top-level
     folds must have moved the gc.* counters. *)
  let gc_minor name =
    Trace.fold_spans
      (fun acc sp ->
        if sp.Trace.sp_name = name then
          match List.assoc_opt "gc.minor_words" sp.Trace.sp_attrs with
          | Some (Trace.Float f) -> Float.max acc f
          | _ -> acc
        else acc)
      0.0
  in
  expect
    (gc_minor "relog.translate" > 0.0)
    "relog.translate spans carry no gc.minor_words delta";
  expect (gc_minor "sat.solve" > 0.0)
    "sat.solve spans carry no gc.minor_words delta";
  expect
    (Metrics.counter_value (Metrics.counter "gc.minor_words") > 0)
    "gc.minor_words counter never moved with --profile-gc semantics on";
  (* The OpenMetrics export must satisfy its own well-formedness
     checker (TYPE'd families, cumulative ascending buckets, +Inf =
     _count, trailing # EOF). *)
  (match Telemetry.openmetrics_check (Telemetry.openmetrics_string ()) with
  | Ok () -> ()
  | Error msg -> expect false ("OpenMetrics export fails validation: " ^ msg));
  (* The span ring stays bounded and keeps the newest roots. *)
  let cap_before = Trace.root_cap () in
  Trace.set_root_cap 2;
  List.iter
    (fun name -> Trace.with_span name (fun () -> ()))
    [ "obs.ring_a"; "obs.ring_b"; "obs.ring_c" ];
  expect
    (List.length (Trace.roots ()) = 2)
    "span ring retains more roots than its cap";
  expect (Trace.dropped_roots () > 0) "span ring dropped roots went uncounted";
  (match List.rev (Trace.roots ()) with
  | newest :: _ ->
      expect
        (newest.Trace.sp_name = "obs.ring_c")
        "span ring did not keep the newest root"
  | [] -> ());
  Trace.set_root_cap cap_before;
  (* restore pristine observability state for whatever runs next *)
  Log.set_level Log.Info;
  Log.set_rate_limit Log.default_rate_limit;
  Log.reset ();
  Trace.set_profile_gc false;
  Trace.disable ();
  Metrics.disable ();
  Trace.reset ();
  Metrics.reset ();
  (try Sys.remove log_path with Sys_error _ -> ());
  match !failures with
  | [] ->
      Printf.printf "obs smoke: %d log lines, all gates passed\n%!"
        (List.length lines)
  | fs ->
      List.iter (fun f -> Printf.printf "obs smoke FAILURE: %s\n" f) fs;
      exit 1

(* --- benchdiff smoke (tier-1 gate) ------------------------------------------ *)

(* Exercises the trajectory regression gate against synthetic history
   files, so the gate is deterministic under `dune runtest`: a missing
   history skips, a single entry has no baseline, a stable trend
   passes, an inflated latest run is flagged, smoke- and full-mode
   entries never cross-compare, malformed lines are counted but not
   fatal. *)
let run_benchdiff_smoke () =
  header "Benchdiff smoke: bench-trajectory regression gate (tier-1 gate)";
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  let tmp = Filename.temp_file "separ_benchdiff" ".ndjson" in
  Sys.remove tmp;
  (* missing history: `separ benchdiff` skips (exit 0) rather than fail *)
  let entries, malformed = History.load ~path:tmp in
  expect
    (entries = [] && malformed = 0)
    "missing history file did not load as empty";
  expect (History.diff entries = []) "missing history produced section diffs";
  Printf.printf
    "benchdiff smoke: no-baseline case SKIPPED by the gate (exit 0), as \
     specified\n";
  let entry ?(mode = "full") wall_ms =
    {
      History.e_section = "solver";
      e_mode = mode;
      e_wall_ms = wall_ms;
      e_provenance = Json.Null;
      e_extra = [];
    }
  in
  (* one entry: nothing to compare against *)
  History.append ~path:tmp (entry 100.0);
  (match History.diff (fst (History.load ~path:tmp)) with
  | [ d ] ->
      expect
        (d.History.sd_status = History.No_baseline)
        "single entry did not report No_baseline"
  | ds ->
      expect false
        (Printf.sprintf "expected 1 section diff, got %d" (List.length ds)));
  (* stable trend: identical runs must pass *)
  History.append ~path:tmp (entry 102.0);
  History.append ~path:tmp (entry 98.0);
  History.append ~path:tmp (entry 100.0);
  (match History.diff (fst (History.load ~path:tmp)) with
  | [ d ] ->
      expect (d.History.sd_status = History.Ok)
        "stable trend flagged as regression";
      expect (d.History.sd_samples = 3)
        (Printf.sprintf "baseline over %d samples (expected 3)"
           d.History.sd_samples)
  | ds ->
      expect false
        (Printf.sprintf "expected 1 section diff, got %d" (List.length ds)));
  (* a smoke-mode run must not borrow the full-mode baseline *)
  History.append ~path:tmp (entry ~mode:"smoke" 5.0);
  (match
     List.find_opt
       (fun d -> d.History.sd_mode = "smoke")
       (History.diff (fst (History.load ~path:tmp)))
   with
  | Some d ->
      expect
        (d.History.sd_status = History.No_baseline)
        "smoke run compared against the full-mode baseline"
  | None -> expect false "smoke-mode entry produced no section diff");
  (* an inflated latest run must be flagged *)
  History.append ~path:tmp (entry 160.0);
  let regressed, _ = History.load ~path:tmp in
  (match
     List.find_opt (fun d -> d.History.sd_mode = "full") (History.diff regressed)
   with
  | Some d ->
      expect
        (d.History.sd_status = History.Regression)
        (Printf.sprintf "+60%% latest run not flagged (delta %.1f%%)"
           d.History.sd_delta_pct);
      expect
        (d.History.sd_delta_pct > History.default_threshold_pct)
        "regression delta did not exceed the default threshold"
  | None -> expect false "full-mode entries produced no section diff");
  (* malformed lines: skipped and counted, never fatal *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 tmp in
  output_string oc "{this is not json\n";
  close_out oc;
  let after, malformed = History.load ~path:tmp in
  expect (malformed = 1)
    (Printf.sprintf "%d malformed lines counted (expected 1)" malformed);
  expect
    (List.length after = List.length regressed)
    "a malformed line changed the parsed entry count";
  Sys.remove tmp;
  match !failures with
  | [] -> Printf.printf "benchdiff smoke: all gates passed\n%!"
  | fs ->
      List.iter (fun f -> Printf.printf "benchdiff smoke FAILURE: %s\n" f) fs;
      exit 1

(* --- Bechamel kernels ---------------------------------------------------------- *)

let run_kernels () =
  header "Bechamel micro-benchmarks of the pipeline stages";
  let open Bechamel in
  let apk = Demo.navigation_app () in
  let models =
    List.map Extract.extract [ Demo.navigation_app (); Demo.messenger_app () ]
  in
  let bundle = Bundle.of_models models in
  let policies = demo_policies () in
  let icc_apk = rq4_apps 50 in
  let tests =
    [
      (* Table I / Fig 5 kernel: static extraction of one app *)
      Test.make ~name:"ame_extract_app"
        (Staged.stage (fun () -> ignore (Extract.extract apk)));
      (* Table II kernel: encode + solve one signature *)
      Test.make ~name:"ase_synthesize_bundle"
        (Staged.stage (fun () ->
             ignore
               (Ase.analyze
                  ~signatures:[ List.hd (Signatures.all ()) ]
                  ~limit_per_sig:1 bundle)));
      (* RQ4 kernels: dispatch with and without the PEP hooks *)
      Test.make ~name:"runtime_icc_unhooked"
        (Staged.stage (fun () ->
             let d = Device.create () in
             Device.install d icc_apk;
             Device.start_component d ~pkg:"bench.icc" ~component:"Caller"));
      Test.make ~name:"runtime_icc_hooked"
        (Staged.stage (fun () ->
             let d = Device.create () in
             Device.install d icc_apk;
             Device.set_policies d policies [ "bench.icc" ];
             Device.set_enforcement d true;
             Device.start_component d ~pkg:"bench.icc" ~component:"Caller"));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 10) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-26s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-26s (no estimate)\n" name)
        stats)
    tests;
  Printf.printf "%!";
  (* Solver counters for the same pipeline, persisted for trend tracking. *)
  ignore (run_solver_bench ~mode:"kernels" ())

(* --- compiled PDP / fleet soak (BENCH_enforce.json) ------------------------ *)

(* A synthetic store of [rules] ECA policies: the four derived shapes
   (privilege escalation, launch, hijack, leak) permuted over a
   generated app population whose size scales with the store — the way
   real per-component policies accumulate.  Deterministically seeded,
   so every run at a given size sees the same store. *)
let enforce_pop rules = max 4 (rules / 4)

let enforce_store ~rules st =
  let pop = enforce_pop rules in
  let svc i = "Svc" ^ string_of_int i in
  let cmp i = "Cmp" ^ string_of_int i in
  let act i = "com.bench.ACT" ^ string_of_int i in
  let perms = Array.of_list Permission.all in
  let resources = Array.of_list Resource.all in
  let pick arr = arr.(Random.State.int st (Array.length arr)) in
  let rnd () = Random.State.int st pop in
  List.init rules (fun i ->
      let mk event conds action =
        Policy.
          {
            p_id = Printf.sprintf "synth-%d" i;
            p_event = event;
            p_conditions = conds;
            p_action = action;
            p_reason = "synthesized";
          }
      in
      match i mod 4 with
      | 0 ->
          mk Policy.Icc_receive
            [
              Policy.Receiver_is (svc (rnd ()));
              Policy.Sender_lacks_permission (pick perms);
            ]
            Policy.Deny
      | 1 ->
          mk Policy.Icc_receive
            [
              Policy.Receiver_is (svc (rnd ()));
              Policy.Sender_app_not_installed;
            ]
            Policy.Prompt
      | 2 ->
          mk Policy.Icc_send
            [
              Policy.Sender_is (cmp (rnd ()));
              Policy.Implicit;
              Policy.Action_is (act (rnd ()));
              Policy.Receiver_not_in [ svc (rnd ()); svc (rnd ()) ];
            ]
            Policy.Prompt
      | _ ->
          mk Policy.Icc_receive
            [
              Policy.Extras_include (pick resources);
              Policy.Receiver_is (svc (rnd ()));
            ]
            Policy.Deny)

(* A random ICC event over the same population the store was drawn
   from: some explicit, some implicit, some carrying tainted extras,
   senders with partial permission sets. *)
let enforce_event ~pop st =
  let svc = "Svc" ^ string_of_int (Random.State.int st pop) in
  let snd_c = "Cmp" ^ string_of_int (Random.State.int st pop) in
  let resources = Array.of_list Resource.all in
  let explicit = Random.State.bool st in
  let action =
    if Random.State.int st 4 = 0 then
      Some ("com.bench.ACT" ^ string_of_int (Random.State.int st pop))
    else None
  in
  let extras =
    if Random.State.int st 4 = 0 then
      [
        Intent.
          {
            key = "k";
            value = "v";
            taint = [ resources.(Random.State.int st (Array.length resources)) ];
          };
      ]
    else []
  in
  let drop = Random.State.int st 7 in
  let perms = List.filteri (fun i _ -> (i + drop) mod 3 <> 0) Permission.all in
  Policy.
    {
      ev_kind = (if Random.State.bool st then Icc_receive else Icc_send);
      ev_sender_component = snd_c;
      ev_sender_app = "app." ^ snd_c;
      ev_sender_installed_at_analysis = Random.State.bool st;
      ev_sender_permissions = perms;
      ev_intent =
        Intent.make
          ?target:(if explicit then Some svc else None)
          ?action ~extras ();
      ev_receiver_component = svc;
      ev_receiver_app = "app." ^ svc;
    }

let decision_fingerprint = function
  | Policy.Allowed -> "allow"
  | Policy.Prompted p -> "prompt:" ^ p.Policy.p_id
  | Policy.Denied p -> "deny:" ^ p.Policy.p_id

type enforce_latency = {
  el_rules : int;
  el_linear_ns : float;  (* uncompiled single-pass scan, per check *)
  el_compiled_ns : float;  (* compiled decision structure, per check *)
  el_identical : bool;  (* verdict AND deciding policy id, every event *)
  el_stats : Compile.stats;
}

(* Per-check PDP latency vs store size, compiled vs linear, on the same
   event set; every event double-checked for identity along the way. *)
let enforce_latency ~mode ~rules =
  let st = Random.State.make [| 0x5e9a; rules |] in
  let store = enforce_store ~rules st in
  let pop = enforce_pop rules in
  let n_events = if mode = "smoke" then 200 else 1000 in
  let events = Array.init n_events (fun _ -> enforce_event ~pop st) in
  let compiled = Compile.compile store in
  let identical =
    Array.for_all
      (fun ev ->
        decision_fingerprint (Compile.decide_full compiled ev)
        = decision_fingerprint (Policy.decide_both store ev)
        && decision_fingerprint (Compile.decide compiled ev)
           = decision_fingerprint (Policy.decide store ev))
      events
  in
  let checks = if mode = "smoke" then 5_000 else 50_000 in
  let time engine =
    (* one warm-up lap, then the measured loop *)
    for k = 0 to n_events - 1 do
      ignore (engine events.(k))
    done;
    let (), ms =
      Trace.timed "bench.enforce.pdp" (fun () ->
          for k = 0 to checks - 1 do
            ignore (engine events.(k mod n_events))
          done)
    in
    ms *. 1e6 /. float_of_int checks
  in
  {
    el_rules = rules;
    el_linear_ns = time (Policy.decide_both store);
    el_compiled_ns = time (Compile.decide_full compiled);
    el_identical = identical;
    el_stats = Compile.stats compiled;
  }

(* Nearest-bucket percentile estimate out of a metrics histogram: the
   upper bound of the bucket the [q]-quantile falls in, saturating at
   the last finite bound. *)
let hist_percentile h q =
  let total = Metrics.histogram_count h in
  if total = 0 then 0.0
  else begin
    let target =
      max 1 (int_of_float (ceil (q *. float_of_int total)))
    in
    let rec go acc last = function
      | [] -> last
      | (ub, c) :: rest ->
          let acc = acc + c in
          let last = if ub = infinity then last else ub in
          if acc >= target then last else go acc last rest
    in
    go 0 0.0 (Metrics.histogram_buckets h)
  end

type fleet_row = {
  fr_rules : int;
  fr_devices : int;
  fr_checks : int;
  fr_wall_ms : float;
  fr_checks_per_sec : float;
  fr_p50_us : float;
  fr_p99_us : float;
  fr_swaps : int;
  fr_swap_mean_us : float;
  fr_serializations : int;  (* must be 0: the fleet runs in-process *)
}

(* N devices sustaining ICC traffic against one store, with hot policy
   swaps interleaved between traffic waves. *)
let enforce_fleet ~mode ~rules ~devices =
  let st = Random.State.make [| 0xf1ee7; rules; devices |] in
  let store = enforce_store ~rules st in
  let rotated = match store with [] -> [] | p :: rest -> rest @ [ p ] in
  let apk = rq4_apps (if mode = "smoke" then 20 else 50) in
  let fleet =
    List.init devices (fun _ ->
        let d = Device.create () in
        Device.install d apk;
        Device.set_policies d store [ "bench.icc" ];
        Device.set_enforcement d true;
        d)
  in
  Metrics.reset ();
  let waves = if mode = "smoke" then 2 else 4 in
  let (), wall_ms =
    Trace.timed "bench.enforce.fleet" (fun () ->
        for w = 1 to waves do
          List.iter
            (fun d ->
              Device.start_component d ~pkg:"bench.icc" ~component:"Caller")
            fleet;
          (* hot swap under sustained traffic *)
          List.iter
            (fun d ->
              Device.swap_policies d (if w mod 2 = 0 then store else rotated))
            fleet
        done)
  in
  let count name = Metrics.counter_value (Metrics.counter name) in
  let checks = count "runtime.hook_checks" in
  let h_lat = Metrics.histogram "runtime.hook_latency_us" in
  let h_swap = Metrics.histogram "runtime.swap_latency_us" in
  {
    fr_rules = rules;
    fr_devices = devices;
    fr_checks = checks;
    fr_wall_ms = wall_ms;
    fr_checks_per_sec =
      (if wall_ms > 0.0 then float_of_int checks /. (wall_ms /. 1000.0)
       else 0.0);
    fr_p50_us = hist_percentile h_lat 0.50;
    fr_p99_us = hist_percentile h_lat 0.99;
    fr_swaps = count "runtime.policy_swaps";
    fr_swap_mean_us = Metrics.histogram_mean h_swap;
    fr_serializations = count "policy.serializations";
  }

(* Enforcement reports under one PDP mode, as the rendered effect lines
   — the byte-identity unit.  The Figure 1 bundle exercises the
   synthesized (Table I-derived) policies; the ICC benchmark app
   exercises the prompt guard on a foreign sender. *)
let enforce_mode_report ~policies mode =
  let d = Device.create () in
  List.iter (Device.install d)
    [ Demo.navigation_app (); Demo.messenger_app (); Demo.relay_malware () ];
  Device.install d (rq4_apps 10);
  Device.set_policies d policies
    [ "com.example.navigation"; "com.example.messenger" ];
  Device.set_pdp_mode d mode;
  Device.set_enforcement d true;
  Device.start_component d ~pkg:"com.example.navigation"
    ~component:"LocationFinder" ~entry:"onStartCommand";
  Device.start_component d ~pkg:"bench.icc" ~component:"Caller";
  String.concat "\n"
    (List.map (fun e -> Fmt.str "%a" Effect.pp e) (Device.effects d))

type enforce_bench = {
  eb_latency : enforce_latency list;
  eb_fleet : fleet_row list;
  eb_compiled_ratio : float;  (* compiled ns/check at 1000 rules vs 10 *)
  eb_linear_ratio : float;
  eb_identity_ok : bool;
  eb_reports_identical : bool;  (* Compiled vs Reference vs Ipc, bytes *)
  eb_fast_path_serializations : int;
  eb_ipc_serializations : int;
  eb_swaps : int;
  eb_wall_ms : float;
}

let run_enforce_bench ~mode () =
  header
    "Compiled PDP: per-check latency vs store size + device-fleet soak";
  let t_start = Unix.gettimeofday () in
  let was_enabled = Metrics.is_enabled () in
  Metrics.enable ();
  let sizes = [ 10; 100; 1000 ] in
  let latency = List.map (fun rules -> enforce_latency ~mode ~rules) sizes in
  let find_lat rules = List.find (fun l -> l.el_rules = rules) latency in
  let l10 = find_lat 10 and l1000 = find_lat 1000 in
  let ratio a b = if b > 0.0 then a /. b else 0.0 in
  let combos =
    if mode = "smoke" then [ (100, 1); (100, 8) ]
    else
      List.concat_map
        (fun rules -> List.map (fun d -> (rules, d)) [ 1; 8; 64 ])
        sizes
  in
  let fleet =
    List.map (fun (rules, devices) -> enforce_fleet ~mode ~rules ~devices) combos
  in
  let fast_ser =
    List.fold_left (fun acc r -> acc + r.fr_serializations) 0 fleet
  in
  let swaps = List.fold_left (fun acc r -> acc + r.fr_swaps) 0 fleet in
  (* byte-identity of full enforcement reports across PDP modes, and
     the serialization ledger: zero in-process, nonzero over IPC *)
  (* one store for all three modes: derived policy ids come from a
     global counter, so the store must be synthesized exactly once *)
  let mode_policies = demo_policies () in
  let rep_compiled = enforce_mode_report ~policies:mode_policies Device.Compiled in
  let rep_reference =
    enforce_mode_report ~policies:mode_policies Device.Reference
  in
  Metrics.reset ();
  let rep_ipc = enforce_mode_report ~policies:mode_policies Device.Ipc in
  let ipc_ser =
    Metrics.counter_value (Metrics.counter "policy.serializations")
  in
  if not was_enabled then Metrics.disable ();
  let result =
    {
      eb_latency = latency;
      eb_fleet = fleet;
      eb_compiled_ratio = ratio l1000.el_compiled_ns l10.el_compiled_ns;
      eb_linear_ratio = ratio l1000.el_linear_ns l10.el_linear_ns;
      eb_identity_ok = List.for_all (fun l -> l.el_identical) latency;
      eb_reports_identical =
        rep_compiled = rep_reference && rep_reference = rep_ipc;
      eb_fast_path_serializations = fast_ser;
      eb_ipc_serializations = ipc_ser;
      eb_swaps = swaps;
      eb_wall_ms = (Unix.gettimeofday () -. t_start) *. 1000.0;
    }
  in
  let latency_json l =
    Json.Obj
      [
        ("rules", Json.Int l.el_rules);
        ("linear_ns_per_check", Json.Float l.el_linear_ns);
        ("compiled_ns_per_check", Json.Float l.el_compiled_ns);
        ("speedup", Json.Float (ratio l.el_linear_ns l.el_compiled_ns));
        ("identical_decisions", Json.Bool l.el_identical);
        ("index_entries", Json.Int l.el_stats.Compile.st_entries);
        ("index_action_buckets", Json.Int l.el_stats.Compile.st_action_buckets);
        ( "index_receiver_buckets",
          Json.Int l.el_stats.Compile.st_receiver_buckets );
      ]
  in
  let fleet_json r =
    Json.Obj
      [
        ("rules", Json.Int r.fr_rules);
        ("devices", Json.Int r.fr_devices);
        ("hook_checks", Json.Int r.fr_checks);
        ("wall_ms", Json.Float r.fr_wall_ms);
        ("checks_per_sec", Json.Float r.fr_checks_per_sec);
        ("hook_p50_us", Json.Float r.fr_p50_us);
        ("hook_p99_us", Json.Float r.fr_p99_us);
        ("policy_swaps", Json.Int r.fr_swaps);
        ("swap_mean_us", Json.Float r.fr_swap_mean_us);
        ("serializations", Json.Int r.fr_serializations);
      ]
  in
  let json =
    Json.Obj
      [
        ("mode", Json.Str mode);
        ("provenance", Lazy.force provenance);
        ("latency_vs_store_size", Json.List (List.map latency_json latency));
        ("fleet_soak", Json.List (List.map fleet_json fleet));
        ("compiled_1000_vs_10_ratio", Json.Float result.eb_compiled_ratio);
        ("linear_1000_vs_10_ratio", Json.Float result.eb_linear_ratio);
        ("identity_ok", Json.Bool result.eb_identity_ok);
        ("reports_identical_across_modes", Json.Bool result.eb_reports_identical);
        ( "fast_path_serializations",
          Json.Int result.eb_fast_path_serializations );
        ("ipc_serializations", Json.Int result.eb_ipc_serializations);
      ]
  in
  let oc = open_out "BENCH_enforce.json" in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  List.iter
    (fun l ->
      Printf.printf
        "%5d rules: linear %8.0f ns/check, compiled %8.0f ns/check (%.1fx)\n"
        l.el_rules l.el_linear_ns l.el_compiled_ns
        (ratio l.el_linear_ns l.el_compiled_ns))
    latency;
  Printf.printf
    "store 10 -> 1000 rules: compiled per-check cost x%.2f (linear x%.2f)\n"
    result.eb_compiled_ratio result.eb_linear_ratio;
  List.iter
    (fun r ->
      Printf.printf
        "%5d rules x %2d devices: %6d checks, %8.0f checks/s, p50 <= %.1f \
         us, p99 <= %.1f us, %d swaps (mean %.0f us)\n"
        r.fr_rules r.fr_devices r.fr_checks r.fr_checks_per_sec r.fr_p50_us
        r.fr_p99_us r.fr_swaps r.fr_swap_mean_us)
    fleet;
  Printf.printf
    "decisions identical: %b; reports byte-identical across modes: %b\n"
    result.eb_identity_ok result.eb_reports_identical;
  Printf.printf
    "serializations: %d in-process (fast path), %d over IPC -> \
     BENCH_enforce.json\n%!"
    result.eb_fast_path_serializations result.eb_ipc_serializations;
  record_history ~mode ~section:"enforce"
    ~extra:
      [
        ("compiled_1000_ns", Json.Float l1000.el_compiled_ns);
        ("compiled_ratio", Json.Float result.eb_compiled_ratio);
      ]
    result.eb_wall_ms;
  result

(* Tier-1 gate for `dune runtest`: the compiled PDP must agree with the
   reference decide on verdict and deciding-policy id for every sampled
   event at every store size; full enforcement reports must be
   byte-identical across Compiled/Reference/Ipc modes; the in-process
   fleet must perform zero event serializations while the IPC replay
   performs some; hot swaps must be observed; and the compiled matcher
   must beat the linear scan at 1000 rules. *)
let run_enforce_smoke () =
  header "Enforce smoke: compiled-PDP identity + zero-copy hook (tier-1 gate)";
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  let r = run_enforce_bench ~mode:"smoke" () in
  expect r.eb_identity_ok
    "compiled PDP disagrees with reference decide (verdict or policy id)";
  expect r.eb_reports_identical
    "enforcement reports differ across Compiled/Reference/Ipc PDP modes";
  expect
    (r.eb_fast_path_serializations = 0)
    (Printf.sprintf
       "in-process fleet performed %d event serializations (expected 0)"
       r.eb_fast_path_serializations);
  expect
    (r.eb_ipc_serializations > 0)
    "IPC-mode replay performed no event serializations (expected > 0)";
  expect (r.eb_swaps > 0) "fleet soak recorded no hot policy swaps";
  (let l1000 = List.find (fun l -> l.el_rules = 1000) r.eb_latency in
   expect
     (l1000.el_compiled_ns < l1000.el_linear_ns)
     (Printf.sprintf
        "compiled PDP not faster than linear scan at 1000 rules (%.0f >= \
         %.0f ns/check)"
        l1000.el_compiled_ns l1000.el_linear_ns));
  match !failures with
  | [] -> Printf.printf "enforce smoke: all gates passed\n%!"
  | fs ->
      List.iter (fun f -> Printf.printf "enforce smoke FAILURE: %s\n" f) fs;
      exit 1

(* --- driver ----------------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv in
  let has name = List.mem name args in
  let opt name default =
    let rec go = function
      | a :: b :: _ when a = name -> int_of_string b
      | _ :: rest -> go rest
      | [] -> default
    in
    go args
  in
  let all = List.length args <= 1 || has "all" in
  (* [--trace] records the whole run and writes trace.json at exit. *)
  let tracing = has "--trace" in
  if tracing then begin
    Trace.enable ();
    Metrics.enable ()
  end;
  if has "--smoke" then run_smoke ();
  if has "--solver-smoke" then run_solver_parity_smoke ();
  if has "--telemetry-smoke" then run_telemetry_smoke ();
  if has "--parallel-smoke" then run_parallel_smoke ();
  if has "--incremental-smoke" then run_incremental_smoke ();
  if has "--cache-smoke" then run_cache_smoke ();
  if has "--serve-smoke" then run_serve_smoke ();
  if has "--obs-smoke" then run_obs_smoke ();
  if has "--benchdiff-smoke" then run_benchdiff_smoke ();
  if has "--enforce-smoke" then run_enforce_smoke ();
  if all || has "table1" then run_table1 ();
  if all || has "parallel" then ignore (run_parallel_bench ~mode:"full" ());
  if all || has "incremental" then
    ignore (run_incremental_bench ~mode:"full" ());
  if all || has "cache" then ignore (run_cache_bench ~mode:"full" ());
  if all || has "serve" then ignore (run_serve_bench ~mode:"full" ());
  if all || has "enforce" then ignore (run_enforce_bench ~mode:"full" ());
  if all || has "flowbench" then run_flowbench ();
  if all || has "scenario" then run_scenario ();
  if all || has "fig5" then run_fig5 ~apps:(opt "--apps" 4000) ();
  if all || has "table2" then run_table2 ~bundles:(opt "--bundles" 10) ();
  if all || has "rq2" then run_rq2 ~bundles:(opt "--bundles" 80) ();
  if all || has "rq4" then run_rq4 ();
  if all || has "ablation-minimal" then run_ablation_minimal ();
  if all || has "ablation-context" then run_ablation_context ();
  if all || has "ablation-pruning" then run_ablation_pruning ();
  if all || has "ablation-incremental" then run_ablation_incremental ();
  if all || has "kernels" then run_kernels ();
  if tracing then begin
    Separ_report.Telemetry.write_trace "trace.json";
    Printf.printf "\nwrote Chrome trace to trace.json (load in \
                   chrome://tracing or https://ui.perfetto.dev)\n%!"
  end
