(* The SEPAR command-line tool.

     separ analyze a.apk.txt b.apk.txt [-o policies.pol]
         run AME + ASE over the bundle and synthesize policies
     separ extract a.apk.txt
         print the extracted architectural model of one app
     separ table1
         reproduce the Table I tool comparison
     separ demo
         run the Figure-1 attack/defense demonstration
     separ generate -n 5 -d DIR
         emit synthetic store apps as .apk.txt files
     separ serve --cache DIR
         run the app-store analysis daemon: upload/remove events on
         stdin (or --events FILE), footprint-indexed selective
         re-analysis, one verdict line per event

   APK files use the textual container format of [Apk_text]: a manifest
   header followed by a smali-like class listing. *)

open Cmdliner
module Trace = Separ_obs.Trace
module Metrics = Separ_obs.Metrics
module Log = Separ_obs.Log

let load_apks paths = List.map Separ_dalvik.Apk_text.load paths

(* Validating argument converters: [-j 0] or a negative solve budget
   used to be accepted silently and produce undefined downstream
   behaviour; now they fail at parse time with a clear message. *)
let int_at_least ~min ~what =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= min -> Ok n
    | Ok n ->
        Error
          (`Msg (Printf.sprintf "%s must be >= %d (got %d)" what min n))
    | Error _ as e -> e
  in
  Arg.conv ~docv:"N" (parse, Arg.conv_printer Arg.int)

let nonneg_float ~what =
  let parse s =
    match Arg.conv_parser Arg.float s with
    | Ok f when f >= 0.0 -> Ok f
    | Ok f ->
        Error (`Msg (Printf.sprintf "%s must be >= 0 (got %g)" what f))
    | Error _ as e -> e
  in
  Arg.conv ~docv:"MS" (parse, Arg.conv_printer Arg.float)

(* Shared [--trace FILE] / [--metrics] flags.  Either one switches the
   telemetry layer on (spans are what give [--metrics] its per-phase
   durations); with both off the instrumented hot paths cost one branch
   each and nothing is recorded. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the run to $(docv) (open in \
           chrome://tracing or Perfetto)")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect pipeline metrics and per-phase durations; they are \
           merged into JSON output and printed to stderr for text output")

(* Structured observability flags, shared by [analyze] and [enforce]:
   [--log FILE] streams leveled NDJSON events (one JSON object per
   line; /dev/stderr works), [--metrics-out FILE] dumps the metric
   registry as OpenMetrics text at exit, [--profile-gc] adds GC deltas
   to every span.  All of them imply switching the relevant telemetry
   layer on; with everything off the instrumented hot paths stay one
   branch each. *)
let log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Append structured NDJSON log events to $(docv) (use \
           $(b,/dev/stderr) to stream them to the terminal)")

let log_level_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("debug", Log.Debug); ("info", Log.Info); ("warn", Log.Warn);
             ("error", Log.Error);
           ])
        Log.Info
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Minimum level written to $(b,--log): $(b,debug), $(b,info), \
           $(b,warn) or $(b,error)")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the metric registry to $(docv) in OpenMetrics/Prometheus \
           text format at exit (implies metric collection)")

let profile_gc_arg =
  Arg.(
    value & flag
    & info [ "profile-gc" ]
        ~doc:
          "Capture GC deltas (minor/major words allocated, collections, \
           heap size) for every traced span, as $(b,gc.*) span attributes \
           and metrics (implies tracing and metric collection)")

let telemetry_setup ~trace ~metrics ~log ~log_level ~metrics_out ~profile_gc =
  if trace <> None || metrics || metrics_out <> None || profile_gc then begin
    Trace.enable ();
    Metrics.enable ()
  end;
  if profile_gc then Trace.set_profile_gc true;
  match log with
  | Some path ->
      Log.to_file path;
      Log.set_level log_level
  | None -> ()

(* Flush collected telemetry at the end of a command: the trace file if
   requested, the OpenMetrics dump, and (for non-JSON consumers)
   human-readable summaries on stderr. *)
let telemetry_finish ?(to_stderr = true) ~trace ~metrics ?(metrics_out = None)
    () =
  (match trace with
  | Some path ->
      Separ_report.Telemetry.write_trace path;
      Fmt.epr "wrote trace to %s@." path
  | None -> ());
  (match metrics_out with
  | Some path ->
      Separ_report.Telemetry.write_openmetrics path;
      Fmt.epr "wrote OpenMetrics text to %s@." path
  | None -> ());
  if metrics && to_stderr then begin
    Fmt.epr "--- span tree ---@.";
    Trace.print_summary ();
    Fmt.epr "--- metrics ---@.";
    Metrics.print ()
  end;
  Log.close ()

(* Persistent-cache flags, shared by [analyze] and [serve]. *)
let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "SEPAR_CACHE_DIR")
        ~doc:
          "Persist analysis results under $(docv): per-app extraction \
           models and per-signature verdicts are stored content-addressed, \
           so re-analyzing an unchanged bundle re-runs no extraction and \
           no solving, and a one-app change re-analyzes only what the \
           change touches.  Corrupt entries degrade to recomputation.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Ignore $(b,--cache) (and $(b,SEPAR_CACHE_DIR)): run fully cold \
           without reading or writing the store.")

let cache_max_mb_arg =
  Arg.(
    value
    & opt (some (int_at_least ~min:1 ~what:"--cache-max-mb")) None
    & info [ "cache-max-mb" ] ~docv:"MB"
        ~doc:
          "Cap the cache directory at $(docv) MiB; least-recently-used \
           entries are evicted after each write.")

let cache_stats_arg =
  Arg.(
    value & flag
    & info [ "cache-stats" ]
        ~doc:
          "Print persistent-cache counters (per-tier hits/misses, stores, \
           evictions, corrupt entries) to stderr.")

let open_cache ~cache_dir ~no_cache ~cache_max_mb =
  match cache_dir with
  | Some dir when not no_cache ->
      Some
        (Separ.Cache.open_ ~dir
           ?max_bytes:(Option.map (fun mb -> mb * 1024 * 1024) cache_max_mb)
           ())
  | _ -> None

let print_cache_stats ~cache_stats cache =
  if cache_stats then begin
    match cache with
    | None -> Fmt.epr "cache: disabled@."
    | Some store ->
        Fmt.epr "cache (%s): %a@." (Separ.Cache.dir store)
          Fmt.(list ~sep:(any " ") (fun ppf (k, v) -> pf ppf "%s=%d" k v))
          (Separ.Cache.stats store)
  end

(* A positional path may be one APK text file or a directory holding a
   whole bundle of them; directories make [analyze] a multi-bundle run
   (one independent analysis per directory) that [--shard-bundles] can
   spread across the worker pool. *)
let bundle_of_dir dir =
  let entries =
    match Sys.readdir dir with
    | entries ->
        Array.sort compare entries;
        Array.to_list entries
    | exception Sys_error msg -> failwith ("cannot read " ^ dir ^ ": " ^ msg)
  in
  let apks =
    List.filter_map
      (fun name ->
        if Filename.check_suffix name ".apk.txt" then
          Some (Filename.concat dir name)
        else None)
      entries
  in
  if apks = [] then failwith ("no .apk.txt files in " ^ dir);
  load_apks apks

let analyze_cmd =
  let paths =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"APK"
          ~doc:
            "APK text files forming one bundle, or directories of \
             $(b,.apk.txt) files forming one bundle each (don't mix the \
             two)")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write policies to $(docv)")
  in
  let limit =
    Arg.(
      value
      & opt int Separ_relog.Solve.default_enum_limit
      & info [ "limit" ] ~doc:"Maximum scenarios per vulnerability signature")
  in
  let jobs =
    Arg.(
      value
      & opt (int_at_least ~min:1 ~what:"--jobs") 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run the analysis in $(docv) persistent worker processes \
             ($(docv) >= 1): the pool forks once and streams task batches \
             to the workers.  With multiple bundles the work is sharded \
             across bundles first (see $(b,--shard-bundles)), then across \
             signatures.  Results are merged in order, so output is \
             identical across $(docv); a crashed worker degrades only its \
             in-flight tasks instead of failing the run.")
  in
  let shard_bundles =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "shard-bundles" ]
                ~doc:
                  "With multiple bundle directories and $(b,-j) > 1, \
                   distribute whole bundles across the worker pool (the \
                   default): each bundle is one coarse task, so fork and \
                   transport costs amortize and incremental ASE still \
                   shares one base encoding per bundle." );
            ( false,
              info [ "no-shard-bundles" ]
                ~doc:
                  "Analyze bundles sequentially, parallelizing only \
                   across signatures within each bundle." );
          ])
  in
  let budget_conflicts =
    Arg.(
      value
      & opt (some (int_at_least ~min:0 ~what:"--solve-budget-conflicts")) None
      & info [ "solve-budget-conflicts" ] ~docv:"N"
          ~doc:
            "Cap each signature's solver session at $(docv) conflicts \
             ($(docv) >= 0); on exhaustion the signature is reported as \
             degraded (budget_exhausted) with the scenarios found so far.")
  in
  let budget_time =
    Arg.(
      value
      & opt (some (nonneg_float ~what:"--time-budget-ms")) None
      & info [ "time-budget-ms" ] ~docv:"MS"
          ~doc:
            "Cap each signature's solver session at $(docv) milliseconds of \
             wall-clock time ($(docv) >= 0); on exhaustion the signature is \
             reported as degraded (budget_exhausted).")
  in
  let incremental =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "incremental" ]
                ~doc:
                  "Share one bundle encoding and solver across the \
                   signatures of each encoding config (the default): \
                   per-signature formulas ride on activation-literal \
                   assumptions and learnt clauses persist.  Results are \
                   identical to $(b,--no-incremental); only the cost \
                   differs." );
            ( false,
              info [ "no-incremental" ]
                ~doc:
                  "Build a fresh encoding and solver for every signature \
                   (the escape hatch; slower but maximally isolated)." );
          ])
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print CDCL solver counters (conflicts, learnt-db \
                reductions, minimized literals, ...) and encoding-sharing \
                counters (translate-cache and hash-cons hits, reused \
                clauses, per-signature deltas) to stderr")
  in
  let run paths out limit jobs shard_bundles budget_conflicts budget_time
      cache_dir no_cache cache_max_mb cache_stats incremental format stats
      trace metrics log log_level metrics_out profile_gc =
    telemetry_setup ~trace ~metrics ~log ~log_level ~metrics_out ~profile_gc;
    let budget =
      match (budget_conflicts, budget_time) with
      | None, None -> None
      | _ ->
          Some
            {
              Separ_sat.Solver.b_max_conflicts = budget_conflicts;
              b_max_time_ms = budget_time;
            }
    in
    let cache = open_cache ~cache_dir ~no_cache ~cache_max_mb in
    let dirs, files = List.partition Sys.is_directory paths in
    if dirs <> [] && files <> [] then begin
      Fmt.epr
        "separ analyze: mixing bundle directories and loose APK files is \
         ambiguous; pass either files (one bundle) or directories (one \
         bundle each)@.";
      exit 2
    end;
    (* [analyses]: one per bundle, labelled by its directory in
       multi-bundle mode. *)
    let analyses =
      match dirs with
      | [] ->
          [
            ( None,
              Separ.analyze ~limit_per_sig:limit ~jobs ?budget ~incremental
                ?cache (load_apks files) );
          ]
      | dirs ->
          let bundles = List.map bundle_of_dir dirs in
          List.map2
            (fun dir analysis -> (Some dir, analysis))
            dirs
            (Separ.analyze_bundles ~limit_per_sig:limit ~jobs ?budget
               ~incremental ?cache ~shard_bundles bundles)
    in
    print_cache_stats ~cache_stats cache;
    (match format with
    | `Text ->
        List.iter
          (fun (label, analysis) ->
            (match label with
            | Some dir -> Fmt.pr "=== bundle %s ===@." dir
            | None -> ());
            Fmt.pr "%a@." Separ.pp_analysis analysis)
          analyses;
        telemetry_finish ~trace ~metrics ~metrics_out ()
    | `Json ->
        let telemetry =
          if metrics then Some (Separ_report.Telemetry.telemetry_json ())
          else None
        in
        (* One JSON report per line: a single object for one bundle, and
           newline-delimited JSON in multi-bundle mode. *)
        List.iter
          (fun (_, analysis) ->
            print_endline
              (Separ_report.Report.to_string ?telemetry
                 ~report:analysis.Separ.report
                 ~policies:analysis.Separ.policies ()))
          analyses;
        telemetry_finish ~to_stderr:false ~trace ~metrics ~metrics_out ());
    List.iter (fun (label, analysis) ->
    if stats then begin
      (match label with
      | Some dir -> Fmt.epr "--- bundle %s ---@." dir
      | None -> ());
      let s = analysis.Separ.report.Separ_ase.Ase.r_solver in
      let open Separ_sat.Solver in
      Fmt.epr
        "solver: vars=%d clauses=%d conflicts=%d decisions=%d props=%d \
         restarts=%d learnt-db: peak=%d reductions=%d deleted=%d \
         minimized-lits=%d activation-vars: live=%d retired=%d@."
        s.s_vars s.s_clauses s.s_conflicts s.s_decisions s.s_propagations
        s.s_restarts s.s_peak_learnts s.s_db_reductions s.s_learnts_deleted
        s.s_lits_minimized s.s_act_live s.s_act_retired;
      let report = analysis.Separ.report in
      let deltas = report.Separ_ase.Ase.r_sig_deltas in
      let sum f = List.fold_left (fun acc d -> acc + f d) 0 deltas in
      let open Separ_ase.Ase in
      Fmt.epr
        "sharing (%s): translate-cache hits=%d misses=%d hash-cons \
         hits=%d misses=%d reused-clauses=%d reused-learnts=%d@."
        (if report.r_incremental then "incremental" else "from-scratch")
        (sum (fun d -> d.sd_cache_hits))
        (sum (fun d -> d.sd_cache_misses))
        (sum (fun d -> d.sd_hc_hits))
        (sum (fun d -> d.sd_hc_misses))
        (sum (fun d -> d.sd_reused_clauses))
        (sum (fun d -> d.sd_reused_learnts));
      List.iter
        (fun d ->
          Fmt.epr
            "  %s: +%d vars +%d clauses +%d gates (construction %.1f ms, \
             solving %.1f ms)@."
            d.sd_kind d.sd_vars d.sd_clauses d.sd_gates d.sd_construction_ms
            d.sd_solving_ms)
        deltas
    end)
    analyses;
    match out with
    | Some path ->
        let policies =
          List.concat_map (fun (_, a) -> a.Separ.policies) analyses
        in
        let oc = open_out path in
        output_string oc (Separ.Policy.to_string policies);
        output_string oc "\n";
        close_out oc;
        Fmt.pr "wrote %d policies to %s@." (List.length policies) path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Analyze one or more bundles and synthesize policies")
    Term.(
      const run $ paths $ out $ limit $ jobs $ shard_bundles
      $ budget_conflicts $ budget_time $ cache_dir_arg $ no_cache_arg
      $ cache_max_mb_arg $ cache_stats_arg $ incremental $ format $ stats
      $ trace_arg $ metrics_arg $ log_arg $ log_level_arg $ metrics_out_arg
      $ profile_gc_arg)

let extract_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"APK")
  in
  let run path =
    let apk = Separ_dalvik.Apk_text.load path in
    let model = Separ.Extract.extract apk in
    Fmt.pr "%a@." Separ.App_model.pp model
  in
  Cmd.v
    (Cmd.info "extract" ~doc:"Print the extracted model of one app")
    Term.(const run $ path)

let table1_cmd =
  let run () =
    let rows = Separ_suites.Table1.run () in
    print_string (Separ_suites.Table1.render rows)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce the Table I tool comparison")
    Term.(const run $ const ())

let demo_cmd =
  let run () =
    (* Inline version of examples/gps_sms_attack.ml for CLI users. *)
    let module B = Separ.Builder in
    let nav =
      Separ.Apk.make
        ~manifest:
          (Separ.Manifest.make ~package:"nav"
             ~uses_permissions:[ Separ.Permission.access_fine_location ]
             ~components:
               [
                 Separ.Component.make ~name:"Loc" ~kind:Separ.Component.Service ();
               ]
             ())
        ~classes:
          [
            B.cls ~name:"Loc"
              [
                B.meth ~name:"onStartCommand" ~params:1 (fun b ->
                    let v = B.get_location b in
                    let i = B.new_intent b in
                    B.set_action b i "showLoc";
                    B.put_extra b i ~key:"loc" ~value:v;
                    B.send_broadcast b i);
              ];
          ]
    in
    let analysis = Separ.analyze [ nav ] in
    Fmt.pr "%a@." Separ.pp_analysis analysis
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Analyze a small vulnerable app and show policies")
    Term.(const run $ const ())

let spec_cmd =
  let paths =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"APK" ~doc:"APK text files")
  in
  let run paths =
    let apks = load_apks paths in
    let models = List.map Separ.Extract.extract apks in
    let bundle =
      Separ.Bundle.update_passive_targets (Separ.Bundle.of_models models)
    in
    print_string (Separ_specs.Alloy_pp.bundle_spec bundle)
  in
  Cmd.v
    (Cmd.info "spec"
       ~doc:"Emit the bundle's formal model as Alloy-style text")
    Term.(const run $ paths)

let enforce_cmd =
  let paths =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"APK" ~doc:"APK text files")
  in
  let policies_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "p"; "policies" ] ~docv:"FILE" ~doc:"Policy store to enforce")
  in
  let start =
    Arg.(
      required
      & opt (some string) None
      & info [ "start" ] ~docv:"PKG/COMPONENT[/ENTRY]"
          ~doc:"Component to launch once the device is set up")
  in
  let consent =
    Arg.(
      value & flag
      & info [ "approve" ] ~doc:"Approve user prompts (default: refuse)")
  in
  let pdp_ipc =
    Arg.(
      value & flag
      & info [ "pdp-ipc" ]
          ~doc:
            "Consult the PDP across a simulated process boundary (event \
             marshalled both ways per check, the paper's deployed \
             architecture) instead of the in-process compiled decision \
             structure.")
  in
  let run paths policies_file start consent pdp_ipc trace metrics log log_level
      metrics_out profile_gc =
    telemetry_setup ~trace ~metrics ~log ~log_level ~metrics_out ~profile_gc;
    let apks = load_apks paths in
    let policies =
      let ic = open_in policies_file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Separ.Policy.of_string s
    in
    let device = Separ.Device.create () in
    List.iter (Separ.Device.install device) apks;
    Separ.Device.set_policies device policies
      (List.map Separ.Apk.package apks);
    if pdp_ipc then Separ.Device.set_pdp_mode device Separ.Device.Ipc;
    Separ.Device.set_enforcement device true;
    Separ.Device.set_consent device (fun _ _ -> consent);
    Trace.with_span "runtime.start_component"
      ~attrs:[ Trace.attr_str "target" start ]
      (fun () ->
        match String.split_on_char '/' start with
        | [ pkg; component ] ->
            Separ.Device.start_component device ~pkg ~component
        | [ pkg; component; entry ] ->
            Separ.Device.start_component device ~pkg ~component ~entry
        | _ -> failwith "--start expects PKG/COMPONENT[/ENTRY]");
    List.iter
      (fun e -> Fmt.pr "%a@." Separ.Effect.pp e)
      (Separ.Device.effects device);
    telemetry_finish ~trace ~metrics ~metrics_out ()
  in
  Cmd.v
    (Cmd.info "enforce"
       ~doc:"Run a component on a simulated device under a policy store")
    Term.(
      const run $ paths $ policies_file $ start $ consent $ pdp_ipc
      $ trace_arg $ metrics_arg $ log_arg $ log_level_arg $ metrics_out_arg
      $ profile_gc_arg)

(* The bench-trajectory regression gate over BENCH_HISTORY.ndjson (see
   [Separ_report.History]): per (section, mode) group, compare the
   latest recorded wall time against the median of up to K prior runs;
   exceed the threshold and the command exits non-zero.  Sections
   without prior runs are reported as SKIPPED, and a missing history
   file is itself a SKIPPED success — the gate must be safe to wire
   into CI before any history exists. *)
let benchdiff_cmd =
  let module History = Separ_report.History in
  let history_path =
    Arg.(
      value
      & opt string "BENCH_HISTORY.ndjson"
      & info [ "history" ] ~docv:"FILE"
          ~doc:"Bench-trajectory NDJSON file to diff")
  in
  let baseline_k =
    Arg.(
      value
      & opt (int_at_least ~min:1 ~what:"--baseline-k") History.default_k
      & info [ "baseline-k" ] ~docv:"K"
          ~doc:"Baseline = median of up to $(docv) prior runs per section")
  in
  let threshold =
    Arg.(
      value
      & opt (nonneg_float ~what:"--threshold") History.default_threshold_pct
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:"Fail when latest wall time exceeds the baseline by more \
                than $(docv) percent")
  in
  let run history_path baseline_k threshold =
    let entries, malformed = History.load ~path:history_path in
    if malformed > 0 then
      Fmt.epr "benchdiff: skipped %d malformed history line%s@." malformed
        (if malformed = 1 then "" else "s");
    match entries with
    | [] ->
        Fmt.pr "benchdiff: SKIPPED (no history at %s)@." history_path;
        exit 0
    | _ ->
        let diffs = History.diff ~k:baseline_k ~threshold_pct:threshold entries in
        Fmt.pr "benchdiff: %s (%d entries, baseline = median of <= %d prior \
                runs, threshold %g%%)@."
          history_path (List.length entries) baseline_k threshold;
        List.iter
          (fun (d : History.section_diff) ->
            match d.History.sd_status with
            | History.No_baseline ->
                Fmt.pr "  SKIPPED     %-16s %-6s %10.1f ms (no baseline yet)@."
                  d.History.sd_section d.History.sd_mode d.History.sd_latest_ms
            | History.Ok ->
                Fmt.pr
                  "  OK          %-16s %-6s %10.1f ms vs %10.1f ms (%+.1f%%, \
                   %d prior run%s)@."
                  d.History.sd_section d.History.sd_mode d.History.sd_latest_ms
                  d.History.sd_baseline_ms d.History.sd_delta_pct
                  d.History.sd_samples
                  (if d.History.sd_samples = 1 then "" else "s")
            | History.Regression ->
                Fmt.pr
                  "  REGRESSION  %-16s %-6s %10.1f ms vs %10.1f ms (%+.1f%%, \
                   %d prior run%s)@."
                  d.History.sd_section d.History.sd_mode d.History.sd_latest_ms
                  d.History.sd_baseline_ms d.History.sd_delta_pct
                  d.History.sd_samples
                  (if d.History.sd_samples = 1 then "" else "s"))
          diffs;
        let regressions =
          List.filter
            (fun d -> d.History.sd_status = History.Regression)
            diffs
        in
        if regressions <> [] then begin
          Fmt.epr "benchdiff: %d section%s regressed@."
            (List.length regressions)
            (if List.length regressions = 1 then "" else "s");
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "benchdiff"
       ~doc:
         "Compare the latest bench run against the recorded trajectory and \
          fail on wall-time regressions")
    Term.(const run $ history_path $ baseline_k $ threshold)

let generate_cmd =
  let n =
    Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of apps to emit")
  in
  let dir =
    Arg.(value & opt string "." & info [ "d"; "dir" ] ~doc:"Output directory")
  in
  let run n dir =
    let corpus = Separ_workload.Generator.generate () in
    List.iteri
      (fun i g ->
        if i < n then begin
          let apk = g.Separ_workload.Generator.apk in
          let path =
            Filename.concat dir (Separ.Apk.package apk ^ ".apk.txt")
          in
          Separ_dalvik.Apk_text.save path apk;
          Fmt.pr "wrote %s@." path
        end)
      corpus
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit synthetic store apps as APK text files")
    Term.(const run $ n $ dir)

(* The app-store analysis daemon: a long-lived process holding the
   extracted-model store and footprint index, consuming one event per
   line and emitting one verdict line per event.  Commands:

     upload PATH    load PATH (.apk.txt), re-analyze affected bundles
     remove PKG     drop PKG, re-analyze its old partners
     status         print store size and packages
     repair         brute-force re-analysis of every bundle
     quit           exit (EOF does the same)

   A failing command (missing file, malformed APK) reports to stderr
   and leaves the daemon running. *)
let serve_cmd =
  let events =
    Arg.(
      value
      & opt (some file) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Read events from $(docv) (one per line; $(b,#) comments and \
             blank lines ignored) instead of stdin")
  in
  let jobs =
    Arg.(
      value
      & opt (int_at_least ~min:1 ~what:"--jobs") 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Fan multi-bundle events out over $(docv) persistent worker \
             processes ($(docv) >= 1)")
  in
  let limit =
    Arg.(
      value
      & opt int Separ_relog.Solve.default_enum_limit
      & info [ "limit" ] ~doc:"Maximum scenarios per vulnerability signature")
  in
  let run events jobs limit cache_dir no_cache cache_max_mb cache_stats trace
      metrics log log_level metrics_out profile_gc =
    telemetry_setup ~trace ~metrics ~log ~log_level ~metrics_out ~profile_gc;
    let cache = open_cache ~cache_dir ~no_cache ~cache_max_mb in
    let serve = Separ.Serve.create ~limit_per_sig:limit ~jobs ?cache () in
    let ic, close_ic =
      match events with
      | Some path ->
          let ic = open_in path in
          (ic, fun () -> close_in ic)
      | None -> (stdin, fun () -> ())
    in
    let print_verdicts () =
      List.iter
        (fun v -> Fmt.pr "%a@." Separ.Serve.pp_verdict v)
        (Separ.Serve.drain serve)
    in
    let split line =
      match String.index_opt line ' ' with
      | None -> (line, None)
      | Some i ->
          ( String.sub line 0 i,
            Some
              (String.trim
                 (String.sub line (i + 1) (String.length line - i - 1))) )
    in
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> print_verdicts ()
      | line -> (
          let line = String.trim line in
          if line = "" || line.[0] = '#' then loop ()
          else
            match split line with
            | "upload", Some path ->
                (match Separ_dalvik.Apk_text.load path with
                | apk ->
                    Separ.Serve.submit serve (Separ.Serve.Upload apk);
                    print_verdicts ()
                | exception exn ->
                    Fmt.epr "serve: upload %s failed: %s@." path
                      (Printexc.to_string exn));
                loop ()
            | "remove", Some pkg ->
                Separ.Serve.submit serve (Separ.Serve.Remove pkg);
                print_verdicts ();
                loop ()
            | "status", None ->
                Fmt.pr "store: %d app(s)%s@."
                  (Separ.Serve.store_size serve)
                  (match Separ.Serve.packages serve with
                  | [] -> ""
                  | pkgs -> ": " ^ String.concat " " pkgs);
                loop ()
            | "repair", None ->
                let n = Separ.Serve.full_repair serve in
                Fmt.pr "repair: %d bundle(s) re-analyzed@." n;
                loop ()
            | "quit", None -> print_verdicts ()
            | _ ->
                Fmt.epr "serve: unknown command %S@." line;
                loop ())
    in
    loop ();
    close_ic ();
    print_cache_stats ~cache_stats cache;
    telemetry_finish ~trace ~metrics ~metrics_out ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the app-store analysis daemon: footprint-indexed selective \
          re-analysis of upload/remove events")
    Term.(
      const run $ events $ jobs $ limit $ cache_dir_arg $ no_cache_arg
      $ cache_max_mb_arg $ cache_stats_arg $ trace_arg $ metrics_arg
      $ log_arg $ log_level_arg $ metrics_out_arg $ profile_gc_arg)

let () =
  let info =
    Cmd.info "separ" ~version:"1.0.0"
      ~doc:"Formal synthesis and automatic enforcement of Android security policies"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            analyze_cmd; extract_cmd; spec_cmd; table1_cmd; demo_cmd;
            enforce_cmd; generate_cmd; serve_cmd; benchdiff_cmd;
          ]))
